// Package harness defines one runnable experiment per table and figure of
// the paper's evaluation (§6), plus the ablations listed in DESIGN.md. Each
// experiment returns a stats.Table whose rows/series match what the paper
// reports; cmd/misar-fig renders them and bench_test.go wraps them in
// testing.B benchmarks.
//
// Experiments execute through a Runner: a worker pool with a memoization
// cache, so sweeps run in parallel and shared runs (notably the pthread
// baseline, which Fig6/Fig8/Fig9/Headline all normalize against) are
// simulated exactly once per Runner. The package-level Fig* functions are
// conveniences that build a private Runner from Options.Parallel; to share
// the cache across several figures, build one Runner and call its methods.
// Tables are assembled on the calling goroutine in the same row/column
// order as the original serial implementation, so serial (Parallel <= 1)
// and parallel runs render byte-identical output.
package harness

import (
	"fmt"

	"misar/internal/cpu"
	"misar/internal/machine"
	"misar/internal/stats"
	"misar/internal/syncrt"
	"misar/internal/workload"
)

// Options scales experiments: the full paper configuration is Tiles =
// {16, 64} over the whole suite, which takes a while on one host; tests use
// smaller settings.
type Options struct {
	Tiles []int    // core counts to evaluate (paper: 16 and 64)
	Apps  []string // subset of app names; nil = full suite
	// Parallel is the worker-pool size used when a package-level Fig*
	// function builds its own Runner; values < 1 (including the zero
	// value) mean serial. Figures invoked as Runner methods use that
	// Runner's pool instead.
	Parallel int
}

// DefaultOptions reproduces the paper's configuration.
func DefaultOptions() Options {
	return Options{Tiles: []int{16, 64}}
}

// QuickOptions is a reduced configuration for tests and smoke runs.
func QuickOptions() Options {
	return Options{
		Tiles: []int{8},
		Apps:  []string{"radiosity", "ocean-nc", "fluidanimate", "streamcluster"},
	}
}

func (o Options) appList() ([]workload.App, error) {
	suite := workload.Suite()
	if o.Apps == nil {
		return suite, nil
	}
	var out []workload.App
	for _, name := range o.Apps {
		a, ok := workload.ByName(name)
		if !ok {
			return nil, fmt.Errorf("harness: unknown app %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// ShardTransform returns a config transform (see Runner.SetConfigTransform)
// that runs every compatible simulation on the conservative parallel kernel
// with the given shard count. Configurations the sharded kernel rejects —
// Ideal mode's zero-latency sync tables, route-at-injection, fault plans,
// meshes whose height the shard count does not divide — fall back to the
// serial kernel, so a whole figure sweep can be flipped with one call and
// still render. Each shard count is a deterministic pure function of the
// configuration, pinned by its own golden file; it is NOT guaranteed to be
// cycle-identical to the serial kernel under same-cycle contention — see
// DESIGN.md §14 and TestShardedFigureDivergencePinned for the rationale.
func ShardTransform(shards int) func(machine.Config) machine.Config {
	return func(c machine.Config) machine.Config {
		sharded := c
		sharded.Shards = shards
		if machine.Validate(sharded) != nil {
			return c
		}
		return sharded
	}
}

// configEntry names a machine+library combination under evaluation.
type configEntry struct {
	name string
	cfg  func(tiles int) machine.Config
	lib  func() *syncrt.Lib
}

func baselineCfg(tiles int) machine.Config {
	c := machine.Default(tiles)
	c.Name = "pthread"
	c.CPU.Mode = cpu.ModeAlwaysFail
	return c
}

// fig6Configs is the paper's Fig. 6 series (speedup is vs the pthread
// baseline, which is run separately as the denominator).
func fig6Configs() []configEntry {
	return []configEntry{
		{"MSA-0", machine.MSA0, syncrt.HWLib},
		{"MCS-Tour", baselineCfg, syncrt.MCSTourLib},
		{"MSA/OMU-1", func(t int) machine.Config { return machine.MSAOMU(t, 1) }, syncrt.HWLib},
		{"MSA/OMU-2", func(t int) machine.Config { return machine.MSAOMU(t, 2) }, syncrt.HWLib},
		{"MSA-inf", machine.MSAInf, syncrt.HWLib},
		{"Ideal", machine.Ideal, syncrt.HWLib},
	}
}

// Package-level conveniences: each builds a private Runner sized by
// o.Parallel and runs the figure through it.

func Fig5(o Options) (*stats.Table, error)     { return NewRunner(o.Parallel).Fig5(o) }
func Fig6(o Options) (*stats.Table, error)     { return NewRunner(o.Parallel).Fig6(o) }
func Fig7(o Options) (*stats.Table, error)     { return NewRunner(o.Parallel).Fig7(o) }
func Fig8(o Options) (*stats.Table, error)     { return NewRunner(o.Parallel).Fig8(o) }
func Fig9(o Options) (*stats.Table, error)     { return NewRunner(o.Parallel).Fig9(o) }
func Headline(o Options) (*stats.Table, error) { return NewRunner(o.Parallel).Headline(o) }

// Fig5 reproduces Figure 5: raw synchronization latency (cycles, the paper
// plots it on a log scale) for five operations × five schemes × core
// counts.
func (r *Runner) Fig5(o Options) (*stats.Table, error) {
	t := stats.NewTable("Fig5: raw latency (cycles)",
		"Pthread", "MSA-0", "MSA/OMU-2", "MCS-Tour", "Spinlock")
	type scheme struct {
		cfg func(int) machine.Config
		lib func() *syncrt.Lib
	}
	schemes := []scheme{
		{baselineCfg, syncrt.PthreadLib},
		{machine.MSA0, syncrt.HWLib},
		{func(t int) machine.Config { return machine.MSAOMU(t, 2) }, syncrt.HWLib},
		{baselineCfg, syncrt.MCSTourLib},
		{baselineCfg, syncrt.SpinLib},
	}
	kinds := []struct {
		name string
		run  MicroFn
	}{
		{"LockAcquire", workload.MicroLockAcquire},
		{"LockHandoff", workload.MicroLockHandoff},
		{"BarrierHandoff", workload.MicroBarrierHandoff},
		{"CondSignal", workload.MicroCondSignal},
		{"CondBroadcast", workload.MicroCondBroadcast},
	}
	type tableRow struct {
		label string
		runs  []*Run
	}
	var rows []tableRow
	for _, k := range kinds {
		for _, tiles := range o.Tiles {
			runs := make([]*Run, len(schemes))
			for i, s := range schemes {
				runs[i] = r.Micro(k.name, k.run, s.cfg(tiles), s.lib())
			}
			rows = append(rows, tableRow{fmt.Sprintf("%s/%dc", k.name, tiles), runs})
		}
	}
	for _, row := range rows {
		cells := make([]float64, len(row.runs))
		for i, run := range row.runs {
			res, err := run.Micro()
			if err != nil {
				return nil, err
			}
			cells[i] = res.Cycles
		}
		t.AddRow(row.label, cells...)
	}
	return t, nil
}

// Fig6 reproduces Figure 6: whole-application speedup over the pthread
// baseline for each configuration, per benchmark and geomean.
func (r *Runner) Fig6(o Options) (*stats.Table, error) {
	cfgs := fig6Configs()
	apps, err := o.appList()
	if err != nil {
		return nil, err
	}
	cols := make([]string, len(cfgs))
	for i, c := range cfgs {
		cols[i] = c.name
	}
	t := stats.NewTable("Fig6: speedup vs pthread", cols...)
	type appRow struct {
		app  workload.App
		base *Run
		runs []*Run
	}
	rowsByTiles := make([][]appRow, len(o.Tiles))
	for ti, tiles := range o.Tiles {
		for _, app := range apps {
			ar := appRow{app: app, base: r.App(app, baselineCfg(tiles), syncrt.PthreadLib())}
			for _, c := range cfgs {
				ar.runs = append(ar.runs, r.App(app, c.cfg(tiles), c.lib()))
			}
			rowsByTiles[ti] = append(rowsByTiles[ti], ar)
		}
	}
	for ti, tiles := range o.Tiles {
		speedups := make([][]float64, len(cfgs))
		for _, ar := range rowsByTiles[ti] {
			base, err := ar.base.Result()
			if err != nil {
				return nil, err
			}
			cells := make([]float64, len(cfgs))
			for i, run := range ar.runs {
				res, err := run.Result()
				if err != nil {
					return nil, err
				}
				cells[i] = float64(base.Cycles) / float64(res.Cycles)
				speedups[i] = append(speedups[i], cells[i])
			}
			if ar.app.SyncSensitive {
				t.AddRow(fmt.Sprintf("%s/%dc", ar.app.Name, tiles), cells...)
			}
		}
		geo := make([]float64, len(cfgs))
		for i := range cfgs {
			geo[i] = stats.Geomean(speedups[i])
		}
		t.AddRow(fmt.Sprintf("GeoMean/%dc", tiles), geo...)
	}
	return t, nil
}

// Fig7 reproduces Figure 7: percentage of synchronization operations
// handled by the MSA with and without the OMU, for 1- and 2-entry slices.
func (r *Runner) Fig7(o Options) (*stats.Table, error) {
	apps, err := o.appList()
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Fig7: MSA coverage (%)", "Without OMU", "With OMU")
	type pointRow struct {
		label         string
		with, without []*Run
	}
	var rows []pointRow
	for _, entries := range []int{1, 2} {
		for _, tiles := range o.Tiles {
			row := pointRow{label: fmt.Sprintf("MSA-%d/%dc", entries, tiles)}
			for _, app := range apps {
				row.with = append(row.with, r.App(app, machine.MSAOMU(tiles, entries), syncrt.HWLib()))
				row.without = append(row.without, r.App(app, machine.WithoutOMU(machine.MSAOMU(tiles, entries)), syncrt.HWLib()))
			}
			rows = append(rows, row)
		}
	}
	for _, row := range rows {
		var with, without []float64
		for i := range row.with {
			rw, err := row.with[i].Result()
			if err != nil {
				return nil, err
			}
			with = append(with, rw.Coverage*100)
			ro, err := row.without[i].Result()
			if err != nil {
				return nil, err
			}
			without = append(without, ro.Coverage*100)
		}
		t.AddRow(row.label, stats.Mean(without), stats.Mean(with))
	}
	return t, nil
}

// Fig8 reproduces Figure 8: fluidanimate speedup with and without the
// HWSync-bit optimization.
func (r *Runner) Fig8(o Options) (*stats.Table, error) {
	t := stats.NewTable("Fig8: fluidanimate speedup", "With Optimization", "Without Optimization")
	app, ok := workload.ByName("fluidanimate")
	if !ok {
		return nil, fmt.Errorf("harness: fluidanimate missing from suite")
	}
	type tileRuns struct {
		base, with, without *Run
	}
	runs := make([]tileRuns, len(o.Tiles))
	for i, tiles := range o.Tiles {
		runs[i] = tileRuns{
			base:    r.App(app, baselineCfg(tiles), syncrt.PthreadLib()),
			with:    r.App(app, machine.MSAOMU(tiles, 2), syncrt.HWLib()),
			without: r.App(app, machine.WithoutHWSync(machine.MSAOMU(tiles, 2)), syncrt.HWLib()),
		}
	}
	for i, tiles := range o.Tiles {
		base, err := runs[i].base.Result()
		if err != nil {
			return nil, err
		}
		with, err := runs[i].with.Result()
		if err != nil {
			return nil, err
		}
		without, err := runs[i].without.Result()
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("fluidanimate/%dc", tiles),
			float64(base.Cycles)/float64(with.Cycles), float64(base.Cycles)/float64(without.Cycles))
	}
	return t, nil
}

// Fig9 reproduces Figure 9: speedup when the MSA supports only locks or
// only barriers, at the paper's 64-core point (o.Tiles[last] here).
func (r *Runner) Fig9(o Options) (*stats.Table, error) {
	apps, err := o.appList()
	if err != nil {
		return nil, err
	}
	tiles := o.Tiles[len(o.Tiles)-1]
	t := stats.NewTable(fmt.Sprintf("Fig9: %dc speedup", tiles),
		"MSA/OMU-2", "MSA-LockOnly", "MSA-BarrierOnly")
	cfgs := []machine.Config{
		machine.MSAOMU(tiles, 2),
		machine.LockOnly(machine.MSAOMU(tiles, 2)),
		machine.BarrierOnly(machine.MSAOMU(tiles, 2)),
	}
	type appRow struct {
		app  workload.App
		base *Run
		runs [3]*Run
	}
	rows := make([]appRow, 0, len(apps))
	for _, app := range apps {
		ar := appRow{app: app, base: r.App(app, baselineCfg(tiles), syncrt.PthreadLib())}
		for i, cfg := range cfgs {
			ar.runs[i] = r.App(app, cfg, syncrt.HWLib())
		}
		rows = append(rows, ar)
	}
	var speedups [3][]float64
	for _, ar := range rows {
		base, err := ar.base.Result()
		if err != nil {
			return nil, err
		}
		cells := make([]float64, 3)
		for i, run := range ar.runs {
			res, err := run.Result()
			if err != nil {
				return nil, err
			}
			cells[i] = float64(base.Cycles) / float64(res.Cycles)
			speedups[i] = append(speedups[i], cells[i])
		}
		if ar.app.SyncSensitive {
			t.AddRow(ar.app.Name, cells...)
		}
	}
	t.AddRow("GeoMean", stats.Geomean(speedups[0][:]), stats.Geomean(speedups[1][:]), stats.Geomean(speedups[2][:]))
	return t, nil
}

// Headline reproduces the abstract's claims: MSA/OMU-2 speedup over
// pthreads, coverage, and distance from Ideal.
func (r *Runner) Headline(o Options) (*stats.Table, error) {
	apps, err := o.appList()
	if err != nil {
		return nil, err
	}
	tiles := o.Tiles[len(o.Tiles)-1]
	t := stats.NewTable(fmt.Sprintf("Headline @ %dc", tiles), "Value")
	type appRow struct {
		base, hw, inf, ideal *Run
	}
	rows := make([]appRow, 0, len(apps))
	for _, app := range apps {
		rows = append(rows, appRow{
			base:  r.App(app, baselineCfg(tiles), syncrt.PthreadLib()),
			hw:    r.App(app, machine.MSAOMU(tiles, 2), syncrt.HWLib()),
			inf:   r.App(app, machine.MSAInf(tiles), syncrt.HWLib()),
			ideal: r.App(app, machine.Ideal(tiles), syncrt.HWLib()),
		})
	}
	var speedups, infIdeal, omuInf, coverage []float64
	for _, ar := range rows {
		base, err := ar.base.Result()
		if err != nil {
			return nil, err
		}
		hw, err := ar.hw.Result()
		if err != nil {
			return nil, err
		}
		inf, err := ar.inf.Result()
		if err != nil {
			return nil, err
		}
		ideal, err := ar.ideal.Result()
		if err != nil {
			return nil, err
		}
		speedups = append(speedups, float64(base.Cycles)/float64(hw.Cycles))
		infIdeal = append(infIdeal, float64(inf.Cycles)/float64(ideal.Cycles))
		omuInf = append(omuInf, float64(hw.Cycles)/float64(inf.Cycles))
		coverage = append(coverage, hw.Coverage*100)
	}
	t.AddRow("GeoMean MSA/OMU-2 speedup vs pthread (paper: 1.43x)", stats.Geomean(speedups))
	t.AddRow("Mean MSA coverage % (paper: 93%)", stats.Mean(coverage))
	t.AddRow("MSA-inf slowdown vs Ideal (paper: within ~3%)", stats.Geomean(infIdeal))
	t.AddRow("MSA/OMU-2 slowdown vs MSA-inf (paper: similar)", stats.Geomean(omuInf))
	return t, nil
}
