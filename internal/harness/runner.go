package harness

import (
	"context"
	"fmt"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"misar/internal/machine"
	"misar/internal/metrics"
	"misar/internal/obs"
	"misar/internal/sim"
	"misar/internal/syncrt"
	"misar/internal/workload"
)

// RunError is the structured failure of one simulation: it tags the error
// (or recovered panic) with everything needed to reproduce the run —
// experiment label, app, config name, library, and the fault-plan seed when
// the run injected faults. Chaos campaigns key their reports off these
// fields; `errors.As` recovers it from a Run's error.
type RunError struct {
	Label  string // "app on config" experiment label
	App    string
	Config string
	Lib    string
	Seed   uint64 // fault-plan seed; 0 when the run injected no faults
	Panic  any    // non-nil when the simulation panicked
	Stack  string // goroutine stack at the panic, if any
	Err    error  // underlying error when the run failed without panicking
}

func (e *RunError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "harness: %s failed", e.Label)
	if e.Seed != 0 {
		fmt.Fprintf(&b, " (fault seed %#x)", e.Seed)
	}
	if e.Panic != nil {
		fmt.Fprintf(&b, ": panic: %v", e.Panic)
	} else if e.Err != nil {
		fmt.Fprintf(&b, ": %v", e.Err)
	}
	return b.String()
}

func (e *RunError) Unwrap() error { return e.Err }

// Runner is a parallel, memoizing experiment executor. Submitting a run
// returns a *Run future immediately; a pool of up to Workers() goroutines
// executes the simulations in the background. Each unique
// (experiment kind, app, config, tiles, library) combination is simulated
// exactly once per Runner — repeated submissions (the pthread baseline
// appears in Fig6, Fig8, Fig9 and Headline) share one future. This is safe
// because every simulation builds a fresh machine.Machine and the
// single-threaded event kernel in internal/sim makes the result a pure
// function of (app, config, library).
//
// A Runner may be shared across figures (cmd/misar-fig builds one per
// invocation) and across goroutines.
type Runner struct {
	workers int
	sem     chan struct{} // worker slots

	mu        sync.Mutex
	cache     map[runKey]*Run
	order     []*Run // unique runs in submission order, for Reports
	metrics   bool   // meter every subsequently submitted run
	transform func(machine.Config) machine.Config
	progress  func(ProgressEvent)
	budget    sim.Time    // per-simulation cycle budget; 0 means RunDeadline
	retries   int         // extra attempts after a failed simulation
	store     ResultStore // persistent result store; nil means memory-only
	submitted int         // all submissions, including memo hits
	unique    int         // distinct simulations started
	finished  int         // distinct simulations completed
	executed  int         // simulations actually run (not memo/store hits)
	storeHits int         // unique submissions satisfied by the store
}

// runKey identifies one unique simulation. The cfg and lib fields are full
// value fingerprints, so ablation configs that tweak a parameter without
// renaming (e.g. OMUSweep mutating OMUCounters) never alias.
type runKey struct {
	kind string // "app:<name>" or "micro:<operation>"
	cfg  string
	lib  string
}

func keyFor(kind string, cfg machine.Config, lib *syncrt.Lib) runKey {
	return runKey{kind: kind, cfg: fmt.Sprintf("%+v", cfg), lib: fmt.Sprintf("%+v", *lib)}
}

// ProgressEvent describes one completed simulation. Done/Unique/Submitted
// are the runner-wide counters at completion time.
type ProgressEvent struct {
	Label     string        // e.g. "streamcluster on MSA/OMU-2 64c"
	Elapsed   time.Duration // wall-clock of this simulation
	Err       error         // non-nil if the run failed
	StoreHit  bool          // satisfied by the persistent store, not simulated
	Done      int           // unique simulations finished so far
	Unique    int           // unique simulations submitted so far
	Submitted int           // total submissions, including memo hits
}

// RunnerStats summarizes a Runner's activity so far. Submitted - Unique is
// the in-memory memo hit count; Unique = Executed + StoreHits + failures.
type RunnerStats struct {
	Submitted int // total submissions, including memo hits
	Unique    int // distinct simulations started
	Done      int // distinct simulations completed
	Executed  int // simulations actually run (cache and store misses)
	StoreHits int // unique submissions replayed from the persistent store
}

// Run is a future for one submitted simulation. The same *Run is returned
// to every submitter of the same key; results must be treated as read-only.
type Run struct {
	label     string
	kind      string // "app" or "micro"
	done      chan struct{}
	sc        *sharedCancel
	m         *machine.Machine
	cycles    sim.Time
	coverage  float64
	micro     workload.MicroResult
	report    *metrics.Report
	fromStore bool
	err       error
}

// App blocks until the run completes and returns the finished machine (for
// live inspection) and the completion cycle. The machine is nil when the
// run was replayed from the persistent store — prefer Result, which is
// complete in every case, unless the caller truly needs component state.
func (r *Run) App() (*machine.Machine, sim.Time, error) {
	<-r.done
	return r.m, r.cycles, r.err
}

// Micro blocks until the run completes and returns the microbenchmark
// measurement.
func (r *Run) Micro() (workload.MicroResult, error) {
	<-r.done
	return r.micro, r.err
}

// Report blocks until the run completes and returns its metrics report, or
// nil when the run was not metered (see Runner.EnableMetrics) or failed.
func (r *Run) Report() *metrics.Report {
	<-r.done
	return r.report
}

// Flight blocks until the run completes and returns the machine's
// flight-recorder dump: the events embedded in a structured failure
// (machine.FlightOf), or the finished machine's ring on success. Nil for
// store replays and micro runs, which carry no machine.
func (r *Run) Flight() []obs.FlightEvent {
	<-r.done
	if f := machine.FlightOf(r.err); f != nil {
		return f
	}
	if r.m != nil {
		return r.m.Flight.Events()
	}
	return nil
}

// NewRunner returns a Runner executing at most workers simulations
// concurrently; workers < 1 means 1 (serial).
func NewRunner(workers int) *Runner {
	if workers < 1 {
		workers = 1
	}
	return &Runner{
		workers: workers,
		sem:     make(chan struct{}, workers),
		cache:   make(map[runKey]*Run),
	}
}

// Workers returns the pool size.
func (r *Runner) Workers() int { return r.workers }

// SetProgress registers fn to be called after each unique simulation
// completes. Calls are serialized under the Runner's lock, so fn must not
// call back into the Runner.
func (r *Runner) SetProgress(fn func(ProgressEvent)) {
	r.mu.Lock()
	r.progress = fn
	r.mu.Unlock()
}

// EnableMetrics makes every subsequently submitted run build its machine
// with cfg.Metrics set, so each unique simulation produces a
// *metrics.Report. Metered and unmetered submissions of the same experiment
// memoize separately (the Metrics flag is part of the config fingerprint),
// so flipping this mid-stream never hands a caller a report-less future.
func (r *Runner) EnableMetrics() {
	r.mu.Lock()
	r.metrics = true
	r.mu.Unlock()
}

func (r *Runner) metered() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.metrics
}

// SetBudget bounds every subsequently submitted application run to deadline
// cycles instead of workload.RunDeadline. Chaos campaigns set a tight budget
// so a hung fault schedule fails fast with a liveness diagnosis.
func (r *Runner) SetBudget(deadline sim.Time) {
	r.mu.Lock()
	r.budget = deadline
	r.mu.Unlock()
}

// ResultStore is the runner's view of a persistent result store: a local
// *store.Store, or a fleet-aware wrapper that falls back to peer fetch on a
// local miss (internal/fleet.PeerStore). The context carries the run's
// observability identity (trace ID, span recorder) and bounds any network
// side of a lookup; implementations must treat every failure as a miss.
type ResultStore interface {
	GetCtx(ctx context.Context, fp string) ([]byte, bool)
	PutCtx(ctx context.Context, fp string, payload []byte) error
}

// SetStore attaches a persistent result store. Every subsequently submitted
// unique run first consults the store (a hit is replayed without consuming a
// worker slot or running a simulation) and every subsequent success is
// persisted, so warm results are shared across processes and restarts.
// Failed runs are never stored.
func (r *Runner) SetStore(st ResultStore) {
	r.mu.Lock()
	r.store = st
	r.mu.Unlock()
}

// SetRetries makes the Runner re-attempt a failed simulation up to n more
// times before surfacing the failure. Simulations are deterministic, so this
// only helps against host-level nondeterminism (e.g. memory exhaustion in a
// crowded pool); the default is 0.
func (r *Runner) SetRetries(n int) {
	r.mu.Lock()
	if n < 0 {
		n = 0
	}
	r.retries = n
	r.mu.Unlock()
}

func (r *Runner) runBudget() sim.Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.budget == 0 {
		return workload.RunDeadline
	}
	return r.budget
}

func (r *Runner) retryCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.retries
}

// SetConfigTransform installs fn to rewrite every subsequently submitted
// machine configuration before it is fingerprinted and run. The golden
// NoC-equivalence tests use it to flip an entire figure sweep onto the
// cascade reference timing model; transformed and untransformed submissions
// memoize separately because the fingerprint covers the rewritten config.
func (r *Runner) SetConfigTransform(fn func(machine.Config) machine.Config) {
	r.mu.Lock()
	r.transform = fn
	r.mu.Unlock()
}

// transformCfg applies the installed config rewrite, if any.
func (r *Runner) transformCfg(cfg machine.Config) machine.Config {
	r.mu.Lock()
	fn := r.transform
	r.mu.Unlock()
	if fn != nil {
		cfg = fn(cfg)
	}
	return cfg
}

// Reports returns the reports of all unique metered runs in submission
// order, blocking until each completes. Runs that were unmetered or failed
// are skipped. Submission order is deterministic for a fixed figure set —
// figures enqueue on the calling goroutine — so the returned slice is too,
// regardless of worker count.
func (r *Runner) Reports() []*metrics.Report {
	r.mu.Lock()
	runs := make([]*Run, len(r.order))
	copy(runs, r.order)
	r.mu.Unlock()
	var reps []*metrics.Report
	for _, run := range runs {
		if rep := run.Report(); rep != nil {
			reps = append(reps, rep)
		}
	}
	return reps
}

// Stats returns the submission/memoization counters.
func (r *Runner) Stats() RunnerStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return RunnerStats{
		Submitted: r.submitted,
		Unique:    r.unique,
		Done:      r.finished,
		Executed:  r.executed,
		StoreHits: r.storeHits,
	}
}

// sharedCancel turns many submitter contexts into one run-wide cancel
// decision. Every submitter that shares a memoized future attaches its
// context; the run's private context is cancelled only when every attached
// context has ended while the run is still going — one impatient caller in
// a figure sweep must never kill a simulation that other callers (or a
// Background-context caller, which pins the run) are still waiting on.
type sharedCancel struct {
	cancel context.CancelFunc

	mu     sync.Mutex
	active int  // attached cancellable contexts still live
	pinned bool // an uncancellable context joined: never cancel
}

func newSharedCancel(cancel context.CancelFunc) *sharedCancel {
	return &sharedCancel{cancel: cancel}
}

// attach registers one submitter's interest. done is the run's completion
// channel; once the run finishes, watcher goroutines drain away regardless
// of the submitter contexts.
func (s *sharedCancel) attach(ctx context.Context, done <-chan struct{}) {
	if ctx == nil || ctx.Done() == nil {
		s.mu.Lock()
		s.pinned = true
		s.mu.Unlock()
		return
	}
	if ctx.Err() != nil {
		// Already ended: vote to cancel synchronously, so a submission with
		// a dead context deterministically never starts its simulation.
		s.mu.Lock()
		fire := s.active == 0 && !s.pinned
		s.mu.Unlock()
		if fire {
			s.cancel()
		}
		return
	}
	s.mu.Lock()
	s.active++
	s.mu.Unlock()
	go func() {
		select {
		case <-done:
		case <-ctx.Done():
			s.mu.Lock()
			s.active--
			fire := s.active == 0 && !s.pinned
			s.mu.Unlock()
			if fire {
				s.cancel()
			}
		}
	}()
}

// submit returns the future for key, starting fn at most once while the key
// is live. Submission never blocks: the goroutine waits for a worker slot,
// so figures can enqueue an entire sweep before collecting any result. When
// a store is attached and skey is non-empty, the store is consulted first —
// a hit replays the persisted result without consuming a worker slot — and
// a success is persisted afterwards.
//
// Failure containment: a panicking fn is recovered into a *RunError built
// from tag (so every sharer of the future sees a structured, reproducible
// failure instead of a crashed process), the worker slot is always released,
// and the key is evicted from the memo cache — a failed simulation must not
// satisfy future submissions, only in-flight sharers of the same future.
// Cancellation counts as failure: a cancelled run is evicted, so a later
// submission with a live context simply re-runs the experiment.
func (r *Runner) submit(ctx context.Context, kind string, key runKey, skey string, tag RunError, fn func(ctx context.Context, run *Run) error) *Run {
	label := tag.Label
	r.mu.Lock()
	r.submitted++
	if existing, ok := r.cache[key]; ok {
		r.mu.Unlock()
		existing.sc.attach(ctx, existing.done)
		return existing
	}
	run := &Run{label: label, kind: kind, done: make(chan struct{})}
	// The run's lifecycle detaches from the submitter (it must outlive an
	// impatient caller when sharers remain), but its observability identity
	// does not: the first submitter's trace ID and span recorder ride along,
	// so a served job's queue wait and simulation phases land in its trace.
	runCtx, cancel := context.WithCancel(obs.Transfer(context.Background(), ctx))
	run.sc = newSharedCancel(cancel)
	run.sc.attach(ctx, run.done)
	r.cache[key] = run
	r.order = append(r.order, run)
	r.unique++
	st := r.store
	r.mu.Unlock()

	go func() {
		defer cancel()
		start := time.Now()
		var storeHit bool
		if st != nil && skey != "" {
			look := obs.StartSpan(runCtx, "harness", "store.lookup")
			storeHit = r.tryStore(runCtx, st, skey, run)
			look.SetArg("label", label)
			look.SetArg("hit", fmt.Sprint(storeHit))
			look.End()
		}
		if storeHit {
			r.mu.Lock()
			r.storeHits++
			r.mu.Unlock()
		} else {
			wait := obs.StartSpan(runCtx, "harness", "queue.wait")
			r.sem <- struct{}{}
			wait.SetArg("label", label)
			wait.End()
			if runCtx.Err() != nil {
				// Every submitter gave up before a worker freed up; don't
				// burn the slot on a run nobody is waiting for.
				re := tag
				re.Err = &machine.CancelError{Cause: context.Cause(runCtx)}
				run.err = &re
			} else {
				r.mu.Lock()
				r.executed++
				r.mu.Unlock()
				for attempt := r.retryCount(); ; attempt-- {
					run.err = nil
					func() {
						defer func() {
							if p := recover(); p != nil {
								re := tag // copy, then fill in the failure
								re.Panic = p
								re.Stack = string(debug.Stack())
								run.err = &re
							}
						}()
						run.err = fn(runCtx, run)
					}()
					// A cancelled run must not retry: the callers are gone
					// and each retry would burn a full budget's worth of
					// simulation.
					if run.err == nil || attempt <= 0 || runCtx.Err() != nil {
						break
					}
				}
			}
			<-r.sem
			if run.err == nil && st != nil && skey != "" {
				r.putStore(runCtx, st, skey, run)
			}
		}
		elapsed := time.Since(start)
		if run.err != nil {
			r.mu.Lock()
			if r.cache[key] == run {
				delete(r.cache, key)
			}
			r.mu.Unlock()
		}
		close(run.done)

		r.mu.Lock()
		r.finished++
		if r.progress != nil {
			r.progress(ProgressEvent{
				Label:     label,
				Elapsed:   elapsed,
				Err:       run.err,
				StoreHit:  storeHit,
				Done:      r.finished,
				Unique:    r.unique,
				Submitted: r.submitted,
			})
		}
		r.mu.Unlock()
	}()
	return run
}

// App submits one application run. Submissions of the same
// (app, config, library) share a single simulation.
func (r *Runner) App(app workload.App, cfg machine.Config, lib *syncrt.Lib) *Run {
	return r.AppCtx(context.Background(), app, cfg, lib)
}

// AppCtx is App with caller cancellation. The context is advisory for
// sharers: the underlying simulation is cancelled only when every submitter
// sharing the memoized future has cancelled (a Background-context submitter
// pins the run to completion). A cancelled run fails with a
// *machine.CancelError inside the *RunError and is evicted from the memo
// cache.
func (r *Runner) AppCtx(ctx context.Context, app workload.App, cfg machine.Config, lib *syncrt.Lib) *Run {
	cfg = r.transformCfg(cfg)
	if r.metered() {
		cfg.Metrics = true
	}
	tag := RunError{
		Label:  fmt.Sprintf("%s on %s", app.Name, cfg.Name),
		App:    app.Name,
		Config: cfg.Name,
		Lib:    lib.Desc(),
		Seed:   cfg.Fault.Seed,
	}
	budget := r.runBudget()
	skey := StoreKey("app:"+app.Name, cfg, lib, budget)
	return r.submit(ctx, "app", keyFor("app:"+app.Name, cfg, lib), skey, tag, func(ctx context.Context, run *Run) error {
		m, cycles, err := workload.RunBudgetCtx(ctx, app, cfg, lib, budget)
		if err != nil {
			re := tag
			re.Err = err
			return &re
		}
		run.m, run.cycles = m, cycles
		run.coverage = m.Coverage()
		run.report = m.MetricsReport("app", app.Name, lib.Desc())
		return nil
	})
}

// MicroFn is one of the workload.Micro* measurement functions.
type MicroFn func(machine.Config, *syncrt.Lib) workload.MicroResult

// Micro submits one Fig. 5 microbenchmark, memoized by
// (operation, config, library).
func (r *Runner) Micro(op string, fn MicroFn, cfg machine.Config, lib *syncrt.Lib) *Run {
	return r.MicroCtx(context.Background(), op, fn, cfg, lib)
}

// MicroCtx is Micro with caller cancellation. Microbenchmarks are short, so
// the context is honored at admission (a run that has not started yet is
// skipped) rather than polled mid-measurement.
func (r *Runner) MicroCtx(ctx context.Context, op string, fn MicroFn, cfg machine.Config, lib *syncrt.Lib) *Run {
	cfg = r.transformCfg(cfg)
	if r.metered() {
		cfg.Metrics = true
	}
	tag := RunError{
		Label:  fmt.Sprintf("%s on %s", op, cfg.Name),
		App:    op,
		Config: cfg.Name,
		Lib:    lib.Desc(),
		Seed:   cfg.Fault.Seed,
	}
	// Micro measurements ignore the runner budget, so the store key embeds
	// a fixed 0 — warm results stay shared across runners with different
	// app budgets.
	skey := StoreKey("micro:"+op, cfg, lib, 0)
	return r.submit(ctx, "micro", keyFor("micro:"+op, cfg, lib), skey, tag, func(ctx context.Context, run *Run) error {
		run.micro = fn(cfg, lib)
		run.report = run.micro.Report
		return nil
	})
}
