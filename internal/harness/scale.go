package harness

import (
	"fmt"
	"runtime"
	"time"

	"misar/internal/cpu"
	"misar/internal/machine"
	"misar/internal/memory"
	"misar/internal/sim"
	"misar/internal/stats"
	"misar/internal/syncrt"
)

// ScaleShards are the shard counts the scale sweep attempts at every
// machine size. Counts the mesh cannot host (the shard count must divide
// the mesh height into row bands) are skipped silently.
var ScaleShards = []int{1, 2, 4, 8}

// scalePhases is the number of barrier phases every tile executes in the
// scale workload.
const scalePhases = 3

// scaleDeadline bounds one scale run; the workload is a few barrier phases,
// so hitting this means the machine hung, not that the budget was tight.
const scaleDeadline sim.Time = 1 << 40

// ScaleSweep measures the conservative parallel kernel at machine scales
// the paper's serial evaluation never reaches (the CLI runs it with
// `-fig scale -tiles 256,1024`). Every tile runs scalePhases rounds of
// skewed local compute followed by the combining-tree software barrier —
// the baseline built for large goals, with bounded fan-in at every counter
// — so the workload is meaningful at 1024 participants and exercises the
// coherence, NoC, and sync layers across every shard boundary.
//
// Unlike the figure experiments this sweep reports HOST wall-clock, which
// is inherently nondeterministic, so it has no golden and no memoization:
// each (tiles, shards) point is simulated directly and its wall time,
// speedup versus the serial kernel at the same scale, simulated end cycle,
// and end-cycle delta versus serial are tabulated. The cycle columns are
// deterministic; the delta is 0 when the sharded run's same-cycle
// tie-breaks agree with the serial kernel for this workload, and its exact
// value is pinned by TestShardedFigureDivergencePinned-style golden tests
// only where it matters (the figure sweeps) — here it is reported honestly.
func ScaleSweep(o Options) (*stats.Table, error) {
	t := stats.NewTable(
		fmt.Sprintf("Scale: %d-phase tree-barrier workload, wall-clock by shard count (GOMAXPROCS=%d)",
			scalePhases, runtime.GOMAXPROCS(0)),
		"Wall ms", "Speedup", "KCycles", "CycleDelta", "KEvents")
	for _, tiles := range o.Tiles {
		var serialWall time.Duration
		var serialEnd sim.Time
		for _, shards := range ScaleShards {
			end, fired, wall, ok, err := scalePoint(tiles, shards)
			if err != nil {
				return nil, fmt.Errorf("harness: scale %dc/%d shards: %w", tiles, shards, err)
			}
			if !ok {
				continue
			}
			if shards == 1 {
				serialWall, serialEnd = wall, end
			}
			speedup := 0.0
			if wall > 0 && serialWall > 0 {
				speedup = float64(serialWall) / float64(wall)
			}
			t.AddRow(fmt.Sprintf("%dc/k%d", tiles, shards),
				float64(wall.Milliseconds()),
				speedup,
				float64(end)/1e3,
				float64(int64(end)-int64(serialEnd)),
				float64(fired)/1e3)
		}
	}
	return t, nil
}

// scalePoint runs one (tiles, shards) workload and returns the end cycle,
// total fired events, and wall time. ok is false when the shard count does
// not fit the mesh.
func scalePoint(tiles, shards int) (end sim.Time, fired uint64, wall time.Duration, ok bool, err error) {
	cfg := machine.MSAOMU(tiles, 2)
	cfg.Shards = shards
	if machine.Validate(cfg) != nil {
		return 0, 0, 0, false, nil
	}
	m := machine.New(cfg)
	arena := syncrt.NewArena(0x2000000)
	bar := arena.Barrier(tiles)
	qnodes := make([]memory.Addr, tiles)
	for i := range qnodes {
		qnodes[i] = arena.QNode()
	}
	lib := syncrt.MCSTreeLib()
	m.SpawnAll(tiles, func(tid int, e cpu.Env) {
		rt := lib.Bind(e, qnodes[tid])
		for p := 0; p < scalePhases; p++ {
			e.Compute(uint64(100 + (tid*13+p*7)%97))
			rt.Wait(bar)
		}
	})
	start := time.Now()
	end, err = m.Run(scaleDeadline)
	wall = time.Since(start)
	if err != nil {
		return 0, 0, 0, true, err
	}
	if m.Group != nil {
		fired = m.Group.Fired()
	} else {
		fired = m.Engine.Fired()
	}
	return end, fired, wall, true, nil
}
