package harness

import (
	"fmt"

	"misar/internal/machine"
	"misar/internal/stats"
	"misar/internal/syncrt"
)

// SyncOverhead builds the synchronization-overhead breakdown table through a
// private Runner sized by o.Parallel.
func SyncOverhead(o Options) (*stats.Table, error) { return NewRunner(o.Parallel).SyncOverhead(o) }

// SyncOverhead derives a per-application synchronization cost breakdown from
// the metrics counters of metered runs — no re-simulation and no extra
// instrumentation passes; every column is arithmetic over one report:
//
//	SyncStall%  — core cycles spent synchronizing — hardware sync
//	              instruction stalls plus time inside the software paths
//	              (the syncrt.sw_* histogram sums) — as a share of
//	              tiles x total cycles
//	Lock%/Barrier%/Cond% — that cost split by operation class (Lock%
//	              includes unlock)
//	HW%         — share of synchronization operations completed by the MSA
//	Steers      — operations steered to software by the OMU or by slice
//	              capacity (the paper's overflow mechanism at work)
//	SilentLocks — re-acquisitions satisfied core-locally by the HWSync bit
//
// It compares the pthread software baseline against MSA/OMU-2, so the table
// shows both where the baseline's time goes and what the accelerator
// eliminates. The runs are metered regardless of the Runner-wide metrics
// setting; they memoize under the metered fingerprint.
func (r *Runner) SyncOverhead(o Options) (*stats.Table, error) {
	apps, err := o.appList()
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("SyncOverhead: breakdown from metrics counters",
		"SyncStall%", "Lock%", "Barrier%", "Cond%", "HW%", "Steers", "SilentLocks")
	schemes := []configEntry{
		{"pthread", baselineCfg, syncrt.PthreadLib},
		{"MSA/OMU-2", func(t int) machine.Config { return machine.MSAOMU(t, 2) }, syncrt.HWLib},
	}
	type row struct {
		label string
		tiles int
		run   *Run
	}
	var rows []row
	for _, tiles := range o.Tiles {
		for _, app := range apps {
			for _, s := range schemes {
				cfg := s.cfg(tiles)
				cfg.Metrics = true
				rows = append(rows, row{
					label: fmt.Sprintf("%s/%dc %s", app.Name, tiles, s.name),
					tiles: tiles,
					run:   r.App(app, cfg, s.lib()),
				})
			}
		}
	}
	for _, row := range rows {
		if _, err := row.run.Result(); err != nil {
			return nil, err
		}
		rep := row.run.Report()
		if rep == nil {
			return nil, fmt.Errorf("harness: %s: metered run produced no report", row.label)
		}
		c := rep.Metrics.Counters
		swSum := func(name string) uint64 { return rep.Metrics.Histograms[name].Sum }
		coreCycles := float64(row.tiles) * float64(rep.Cycles)
		pct := func(v uint64) float64 {
			if coreCycles == 0 {
				return 0
			}
			return float64(v) / coreCycles * 100
		}
		// Hardware stalls and software-path intervals are disjoint (a HW
		// attempt's stall ends before its fallback's timer starts), so the
		// classes sum cleanly.
		lockCost := c["cpu.stall_lock_cycles"] + c["cpu.stall_unlock_cycles"] +
			swSum("syncrt.sw_lock_cycles") + swSum("syncrt.sw_unlock_cycles")
		barrierCost := c["cpu.stall_barrier_cycles"] + swSum("syncrt.sw_barrier_cycles")
		condCost := c["cpu.stall_cond_cycles"] + swSum("syncrt.sw_cond_wait_cycles")
		hw := c["msa.lock_hw"] + c["msa.unlock_hw"] + c["msa.barrier_hw"] + c["msa.cond_hw"]
		sw := c["msa.lock_sw"] + c["msa.unlock_sw"] + c["msa.barrier_sw"] + c["msa.cond_sw"]
		hwPct := 0.0
		if hw+sw > 0 {
			hwPct = float64(hw) / float64(hw+sw) * 100
		}
		t.AddRow(row.label,
			pct(lockCost+barrierCost+condCost),
			pct(lockCost),
			pct(barrierCost),
			pct(condCost),
			hwPct,
			float64(c["msa.omu_steers"]+c["msa.capacity_steers"]),
			float64(c["msa.silent_locks"]))
	}
	return t, nil
}
