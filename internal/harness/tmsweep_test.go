package harness

import (
	"bytes"
	"os"
	"runtime"
	"testing"
)

// TestTMSweepGolden pins the three-way backend comparison at the quick
// scale: the rendered table must be byte-identical to
// testdata/golden_tm_8c.txt and independent of runner parallelism. The
// golden encodes the crossover story DESIGN.md §16 tells (MSA wins at low
// contention, TM edges ahead at high), so a timing drift anywhere in the
// TM metadata path — clock traffic, lock-word sandwich, backoff — lands
// here as a byte diff.
func TestTMSweepGolden(t *testing.T) {
	want, err := os.ReadFile("testdata/golden_tm_8c.txt")
	if err != nil {
		t.Fatal(err)
	}
	render := func(workers int) []byte {
		tbl, err := NewRunner(workers).TMSweep(QuickOptions())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		tbl.Render(&buf)
		return buf.Bytes()
	}
	serial := render(1)
	parallel := render(runtime.NumCPU())
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("TM sweep depends on runner parallelism:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
	if !bytes.Equal(serial, want) {
		t.Fatalf("TM sweep diverged from golden:\n--- got ---\n%s\n--- want ---\n%s", serial, want)
	}
}
