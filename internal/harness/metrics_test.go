package harness

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"misar/internal/machine"
	"misar/internal/syncrt"
	"misar/internal/workload"
)

func mustApp(t testing.TB, name string) workload.App {
	t.Helper()
	app, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("app %q missing from suite", name)
	}
	return app
}

// TestMetricsReportDeterminism extends the determinism proof to the
// observability layer: the full JSON report of a metered run — every
// counter, gauge, and histogram — must be byte-identical whether the
// simulation ran serially via workload.Run or inside an 8-worker Runner.
func TestMetricsReportDeterminism(t *testing.T) {
	o := QuickOptions()
	tiles := o.Tiles[0]
	cfg := machine.MSAOMU(tiles, 2)
	cfg.Metrics = true

	r := NewRunner(8)
	r.EnableMetrics()
	runs := make(map[string]*Run, len(o.Apps))
	for _, name := range o.Apps {
		runs[name] = r.App(mustApp(t, name), machine.MSAOMU(tiles, 2), syncrt.HWLib())
	}

	for _, name := range o.Apps {
		lib := syncrt.HWLib()
		m, _, err := workload.Run(mustApp(t, name), cfg, lib)
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		serial := m.MetricsReport("app", name, lib.Desc())
		if serial == nil {
			t.Fatalf("%s: metered serial run produced no report", name)
		}
		if _, _, err := runs[name].App(); err != nil {
			t.Fatalf("%s via Runner: %v", name, err)
		}
		parallel := runs[name].Report()
		if parallel == nil {
			t.Fatalf("%s: metered Runner run produced no report", name)
		}
		var bs, bp bytes.Buffer
		if err := serial.WriteJSON(&bs); err != nil {
			t.Fatal(err)
		}
		if err := parallel.WriteJSON(&bp); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bs.Bytes(), bp.Bytes()) {
			t.Errorf("%s: serial and parallel reports differ:\n%s\n----\n%s",
				name, bs.String(), bp.String())
		}
	}
}

// TestSteerConsistency asserts the counters reflect the paper's overflow
// mechanism: with unbounded entries nothing is ever steered to software,
// and with a single entry per slice a lock-heavy workload must overflow.
func TestSteerConsistency(t *testing.T) {
	app := mustApp(t, "fluidanimate")
	steers := func(cfg machine.Config) uint64 {
		cfg.Metrics = true
		lib := syncrt.HWLib()
		m, _, err := workload.Run(app, cfg, lib)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		rep := m.MetricsReport("app", app.Name, lib.Desc())
		c := rep.Metrics.Counters
		return c["msa.omu_steers"] + c["msa.capacity_steers"]
	}
	if got := steers(machine.MSAInf(8)); got != 0 {
		t.Errorf("MSA-inf steered %d operations; ample entries must never overflow", got)
	}
	if got := steers(machine.MSAOMU(8, 1)); got == 0 {
		t.Error("MSA/OMU-1 on a lock-heavy app steered nothing; overflow management never engaged")
	}
}

// TestMeteredCyclesMatchUnmetered: metering must observe, never perturb.
// The simulated outcome of a run is identical with and without a registry
// attached.
func TestMeteredCyclesMatchUnmetered(t *testing.T) {
	app := mustApp(t, "streamcluster")
	cfg := machine.MSAOMU(8, 2)
	_, plain, err := workload.Run(app, cfg, syncrt.HWLib())
	if err != nil {
		t.Fatal(err)
	}
	cfg.Metrics = true
	m, metered, err := workload.Run(app, cfg, syncrt.HWLib())
	if err != nil {
		t.Fatal(err)
	}
	if plain != metered {
		t.Errorf("metering changed the simulation: %d vs %d cycles", plain, metered)
	}
	rep := m.MetricsReport("app", app.Name, syncrt.HWLib().Desc())
	if rep.Cycles != uint64(metered) {
		t.Errorf("report cycles %d != run cycles %d", rep.Cycles, metered)
	}
	if rep.Metrics.Counters["cpu.sync_issued.LOCK"] == 0 {
		t.Error("no LOCK issues recorded on a lock-using app")
	}
}

// TestRunnerReportsOrderAndMemo: Reports() returns one report per unique
// metered run in submission order, with memo hits deduplicated; Micro runs
// deliver their reports the same way.
func TestRunnerReportsOrderAndMemo(t *testing.T) {
	r := NewRunner(4)
	r.EnableMetrics()
	cfg := machine.MSAOMU(8, 2)
	app := mustApp(t, "fluidanimate")
	r.App(app, cfg, syncrt.HWLib())
	r.App(app, cfg, syncrt.HWLib()) // memo hit: must not duplicate
	r.Micro("LockAcquire", workload.MicroLockAcquire, machine.MSAOMU(8, 2), syncrt.HWLib())
	reps := r.Reports()
	if len(reps) != 2 {
		t.Fatalf("Reports() = %d entries, want 2 (memo hit deduplicated)", len(reps))
	}
	if reps[0].Kind != "app" || reps[0].App != "fluidanimate" {
		t.Errorf("first report = %s/%s, want the app run", reps[0].Kind, reps[0].App)
	}
	if reps[1].Kind != "micro" || reps[1].App != "LockAcquire" {
		t.Errorf("second report = %s/%s, want the micro run", reps[1].Kind, reps[1].App)
	}
	for _, rep := range reps {
		if len(rep.Metrics.Counters) == 0 {
			t.Errorf("%s/%s report has no counters", rep.Kind, rep.App)
		}
	}
}

// TestSyncOverheadTable checks the derived breakdown: it is computed purely
// from counters, the MSA/OMU-2 rows show hardware coverage the pthread rows
// cannot, and serial/parallel renderings agree byte-for-byte.
func TestSyncOverheadTable(t *testing.T) {
	o := Options{Tiles: []int{8}, Apps: []string{"fluidanimate", "streamcluster"}}
	serial, err := NewRunner(1).SyncOverhead(o)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewRunner(8).SyncOverhead(o)
	if err != nil {
		t.Fatal(err)
	}
	var bs, bp bytes.Buffer
	serial.Render(&bs)
	parallel.Render(&bp)
	if !bytes.Equal(bs.Bytes(), bp.Bytes()) {
		t.Errorf("serial and parallel SyncOverhead differ:\n%s\n----\n%s", bs.String(), bp.String())
	}
	const hwCol = 4 // "HW%"
	for i := 0; i < serial.Rows(); i++ {
		label := serial.RowLabel(i)
		hw, err := strconv.ParseFloat(serial.Cell(i, hwCol), 64)
		if err != nil {
			t.Fatalf("%s: HW%% cell %q not numeric", label, serial.Cell(i, hwCol))
		}
		if strings.HasSuffix(label, "pthread") {
			if hw != 0 {
				t.Errorf("%s: HW%% = %v, software baseline must be 0", label, hw)
			}
		} else if hw <= 50 { // MSA/OMU-2 rows
			t.Errorf("%s: HW%% = %v, accelerator should cover most operations", label, hw)
		}
	}
}

// BenchmarkRunMetered / BenchmarkRunUnmetered quantify the metering tax on
// a full simulation (the issue's <5% regression criterion): compare
// benchmark results of the two. The nil-instrument zero-allocation half is
// TestNilInstrumentsZeroAlloc in internal/metrics.
func BenchmarkRunUnmetered(b *testing.B) { benchRun(b, false) }
func BenchmarkRunMetered(b *testing.B)   { benchRun(b, true) }

func benchRun(b *testing.B, metered bool) {
	app := mustApp(b, "fluidanimate")
	cfg := machine.MSAOMU(16, 2)
	cfg.Metrics = metered
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := workload.Run(app, cfg, syncrt.HWLib()); err != nil {
			b.Fatal(err)
		}
	}
}
