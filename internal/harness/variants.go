package harness

import (
	"fmt"
	"sort"

	"misar/internal/machine"
	"misar/internal/syncrt"
	"misar/internal/workload"
)

// The named machine+library variants of the evaluation, shared by
// cmd/misar-sim (the -config flag) and the serving layer (the job request's
// "config" field). Keeping the table here — next to baselineCfg and the
// figure sweeps — guarantees that a served job and a figure run of the same
// variant build byte-identical configs, and therefore share memo-cache and
// persistent-store entries.

type variantSpec struct {
	cfg func(tiles int) machine.Config
	lib func() *syncrt.Lib
}

func variantTable() map[string]variantSpec {
	return map[string]variantSpec{
		"pthread":  {baselineCfg, syncrt.PthreadLib},
		"spinlock": {baselineCfg, syncrt.SpinLib},
		"mcs-tour": {baselineCfg, syncrt.MCSTourLib},
		"mcs-tree": {baselineCfg, syncrt.MCSTreeLib},
		"msa0":     {machine.MSA0, syncrt.HWLib},
		"msaomu1":  {func(t int) machine.Config { return machine.MSAOMU(t, 1) }, syncrt.HWLib},
		"msaomu2":  {func(t int) machine.Config { return machine.MSAOMU(t, 2) }, syncrt.HWLib},
		"msaomu4":  {func(t int) machine.Config { return machine.MSAOMU(t, 4) }, syncrt.HWLib},
		"msaomu2-noomu": {func(t int) machine.Config {
			return machine.WithoutOMU(machine.MSAOMU(t, 2))
		}, syncrt.HWLib},
		"msaomu2-noopt": {func(t int) machine.Config {
			return machine.WithoutHWSync(machine.MSAOMU(t, 2))
		}, syncrt.HWLib},
		"msaomu2-lockonly": {func(t int) machine.Config {
			return machine.LockOnly(machine.MSAOMU(t, 2))
		}, syncrt.HWLib},
		"msaomu2-barrieronly": {func(t int) machine.Config {
			return machine.BarrierOnly(machine.MSAOMU(t, 2))
		}, syncrt.HWLib},
		"msainf": {machine.MSAInf, syncrt.HWLib},
		"ideal":  {machine.Ideal, syncrt.HWLib},
		// Software transactional memory (internal/tm): critical sections run
		// as TL2-style transactions on the same software-only machine as the
		// lock baselines — the third point of the lock/MSA/TM axis.
		"tm": {tmCfg, syncrt.TMLib},
	}
}

// tmCfg is baselineCfg renamed so TM runs get their own memo-cache and
// store keys (same hardware: the TM backend never issues MSA instructions).
func tmCfg(tiles int) machine.Config {
	c := baselineCfg(tiles)
	c.Name = "tm"
	return c
}

// Variant resolves a named configuration at a tile count. The returned lib
// constructor is called per use (a *syncrt.Lib is cheap and callers may
// mutate their copy).
func Variant(name string, tiles int) (machine.Config, func() *syncrt.Lib, error) {
	v, ok := variantTable()[name]
	if !ok {
		return machine.Config{}, nil, fmt.Errorf("harness: unknown config %q (known: %v)", name, VariantNames())
	}
	return v.cfg(tiles), v.lib, nil
}

// VariantNames lists the known configuration names, sorted.
func VariantNames() []string {
	t := variantTable()
	names := make([]string, 0, len(t))
	for name := range t {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// MicroOp resolves a Fig. 5 microbenchmark operation by name (the serving
// layer's kind:"micro" jobs).
func MicroOp(name string) (MicroFn, bool) {
	fn, ok := microTable()[name]
	return fn, ok
}

// MicroOpNames lists the known microbenchmark operations, sorted.
func MicroOpNames() []string {
	t := microTable()
	names := make([]string, 0, len(t))
	for name := range t {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// microTable uses the exact operation names Fig5 memoizes under, so a
// served micro job and a Fig5 sweep share store entries.
func microTable() map[string]MicroFn {
	return map[string]MicroFn{
		"LockAcquire":    workload.MicroLockAcquire,
		"LockHandoff":    workload.MicroLockHandoff,
		"BarrierHandoff": workload.MicroBarrierHandoff,
		"CondSignal":     workload.MicroCondSignal,
		"CondBroadcast":  workload.MicroCondBroadcast,
	}
}
