package harness

import "misar/internal/stats"

// Table1 reproduces the paper's Table 1: the taxonomy of prior hardware
// synchronization proposals against MSA/OMU. (Static data, included so the
// repository regenerates every numbered artifact of the paper.)
func Table1() *stats.Table {
	t := stats.NewTable("Table1: HW sync taxonomy",
		"Primitives", "Notification", "Resource overhead", "Dedicated net", "Overflow")
	rows := []struct {
		name  string
		cells [5]string
	}{
		{"Lock Table [9]", [5]string{"Lock", "Indirect", "O(N_lock)", "No", "SW"}},
		{"AMO [25]", [5]string{"Lock, Barrier", "Indirect", "0", "No", "N/A"}},
		{"Tagged Memory [13]", [5]string{"Lock, Barrier", "Indirect", "O(N_mem)", "No", "N/A"}},
		{"QOLB [12]", [5]string{"Lock", "Direct", "O(N_core)", "No", "SW"}},
		{"SSB [26]", [5]string{"Lock", "Indirect", "O(N_activeLock)", "No", "SW"}},
		{"LCU [23]", [5]string{"Lock", "Direct", "O(N_core)", "No", "HW/SW"}},
		{"barrierFilter [21]", [5]string{"Barrier", "Indirect", "O(N_barrier)", "No", "Stall"}},
		{"Lock Cache [4]", [5]string{"Lock", "Direct", "O(N_lock*N_core)", "Yes", "Stall"}},
		{"GLocks [2]", [5]string{"Lock", "Direct", "O(N_lock)", "Yes", "None"}},
		{"bitwiseAND/NOR [7]", [5]string{"Barrier", "Direct", "O(N_barrier)", "Yes", "None"}},
		{"GBarrier [1]", [5]string{"Barrier", "Direct", "O(N_barrier)", "Yes", "None"}},
		{"TLSync [17]", [5]string{"Barrier", "Direct", "O(N_barrier)", "Yes", "None"}},
		{"MSA/OMU (this repo)", [5]string{"Lock, Barrier, CondVar", "Direct", "O(N_core)", "No", "HW"}},
	}
	for _, r := range rows {
		t.AddRowStrings(r.name, r.cells[:]...)
	}
	return t
}
