package harness

import (
	"context"
	"errors"
	"testing"

	"misar/internal/machine"
	"misar/internal/syncrt"
	"misar/internal/workload"
)

func quickApp(t *testing.T) workload.App {
	t.Helper()
	app, ok := workload.ByName("streamcluster")
	if !ok {
		t.Fatal("streamcluster missing from suite")
	}
	return app
}

// A pre-cancelled submission must fail with a CancelError, be evicted from
// the memo cache, and leave the key re-runnable.
func TestAppCtxCancelledEvictsAndReruns(t *testing.T) {
	r := NewRunner(1)
	app := quickApp(t)
	cfg := machine.MSAOMU(4, 2)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	run := r.AppCtx(ctx, app, cfg, syncrt.HWLib())
	_, err := run.Result()
	var ce *machine.CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *machine.CancelError inside *RunError", err)
	}
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *RunError wrapper", err)
	}
	if st := r.Stats(); st.Executed != 0 {
		t.Errorf("cancelled run counted as executed: %+v", st)
	}

	// The failure was evicted: a fresh submission re-runs and succeeds.
	res, err := r.App(app, cfg, syncrt.HWLib()).Result()
	if err != nil {
		t.Fatalf("resubmission after cancel: %v", err)
	}
	if res.Cycles == 0 {
		t.Error("resubmitted run returned zero cycles")
	}
	if st := r.Stats(); st.Executed != 1 || st.Unique != 2 {
		t.Errorf("stats after rerun: %+v", st)
	}
}

// One impatient sharer must not cancel a memoized future that another,
// uncancellable submitter is waiting on.
func TestSharedFutureSurvivesOneCancel(t *testing.T) {
	r := NewRunner(1)
	app := quickApp(t)
	cfg := machine.MSAOMU(4, 2)
	lib := syncrt.HWLib

	ctx, cancel := context.WithCancel(context.Background())
	impatient := r.AppCtx(ctx, app, cfg, lib())
	pinned := r.App(app, cfg, lib()) // Background ctx pins the run
	if impatient != pinned {
		t.Fatal("identical submissions did not share a future")
	}
	cancel()
	res, err := pinned.Result()
	if err != nil {
		t.Fatalf("pinned sharer failed after co-submitter cancelled: %v", err)
	}
	if res.Cycles == 0 {
		t.Error("zero cycles from shared run")
	}
	if st := r.Stats(); st.Executed != 1 {
		t.Errorf("stats: %+v", st)
	}
}

// MicroCtx honors cancellation at admission.
func TestMicroCtxCancelled(t *testing.T) {
	r := NewRunner(1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	fn, ok := MicroOp("LockAcquire")
	if !ok {
		t.Fatal("LockAcquire missing from micro table")
	}
	run := r.MicroCtx(ctx, "LockAcquire", fn, machine.MSAOMU(4, 2), syncrt.HWLib())
	if _, err := run.Micro(); err == nil {
		t.Fatal("pre-cancelled micro succeeded")
	}
	if st := r.Stats(); st.Executed != 0 {
		t.Errorf("stats: %+v", st)
	}
}
