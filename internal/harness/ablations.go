package harness

import (
	"fmt"

	"misar/internal/cpu"
	"misar/internal/machine"
	"misar/internal/memory"
	"misar/internal/sim"
	"misar/internal/stats"
	"misar/internal/syncrt"
	"misar/internal/workload"
)

// Ablations beyond the paper's figures (DESIGN.md A1-A4). They probe the
// design choices the paper discusses but does not sweep: OMU counter count
// (aliasing, §3.2), MSA entry count, NBTC fairness (§4.1), and the
// suspension machinery's overhead (§4.x.2).

func OMUSweep(o Options) (*stats.Table, error)   { return NewRunner(o.Parallel).OMUSweep(o) }
func EntrySweep(o Options) (*stats.Table, error) { return NewRunner(o.Parallel).EntrySweep(o) }
func BloomSweep(o Options) (*stats.Table, error) { return NewRunner(o.Parallel).BloomSweep(o) }

// probeApp returns the lock-rich workload the sweeps probe with.
func probeApp() (workload.App, error) {
	app, ok := workload.ByName("radiosity")
	if !ok {
		return workload.App{}, fmt.Errorf("harness: radiosity missing from suite")
	}
	return app, nil
}

// OMUSweep (A1) varies the per-slice OMU counter count: fewer counters mean
// more aliasing, which steers more operations to software (performance, not
// correctness).
func (r *Runner) OMUSweep(o Options) (*stats.Table, error) {
	tiles := o.Tiles[len(o.Tiles)-1]
	t := stats.NewTable(fmt.Sprintf("A1: OMU counters @ %dc", tiles),
		"Coverage %", "Speedup vs pthread")
	app, err := probeApp()
	if err != nil {
		return nil, err
	}
	baseRun := r.App(app, baselineCfg(tiles), syncrt.PthreadLib())
	counterSet := []int{1, 2, 4, 8, 16}
	runs := make([]*Run, len(counterSet))
	for i, counters := range counterSet {
		cfg := machine.MSAOMU(tiles, 2)
		cfg.MSA.OMUCounters = counters
		runs[i] = r.App(app, cfg, syncrt.HWLib())
	}
	base, err := baseRun.Result()
	if err != nil {
		return nil, err
	}
	for i, counters := range counterSet {
		res, err := runs[i].Result()
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d counters", counters),
			res.Coverage*100, float64(base.Cycles)/float64(res.Cycles))
	}
	return t, nil
}

// EntrySweep (A2) varies the per-slice MSA entry count on a lock-rich
// workload.
func (r *Runner) EntrySweep(o Options) (*stats.Table, error) {
	tiles := o.Tiles[len(o.Tiles)-1]
	t := stats.NewTable(fmt.Sprintf("A2: MSA entries @ %dc", tiles),
		"Coverage %", "Speedup vs pthread")
	app, err := probeApp()
	if err != nil {
		return nil, err
	}
	baseRun := r.App(app, baselineCfg(tiles), syncrt.PthreadLib())
	entrySet := []int{1, 2, 4, 8, -1}
	runs := make([]*Run, len(entrySet))
	for i, entries := range entrySet {
		runs[i] = r.App(app, machine.MSAOMU(tiles, entries), syncrt.HWLib())
	}
	base, err := baseRun.Result()
	if err != nil {
		return nil, err
	}
	for i, entries := range entrySet {
		label := fmt.Sprintf("%d entries", entries)
		if entries < 0 {
			label = "inf entries"
		}
		res, err := runs[i].Result()
		if err != nil {
			return nil, err
		}
		t.AddRow(label, res.Coverage*100, float64(base.Cycles)/float64(res.Cycles))
	}
	return t, nil
}

// BloomSweep (A5) compares the plain counter OMU against the counting
// Bloom filter the paper suggests (§3.2), at equal storage budgets.
func (r *Runner) BloomSweep(o Options) (*stats.Table, error) {
	tiles := o.Tiles[len(o.Tiles)-1]
	t := stats.NewTable(fmt.Sprintf("A5: OMU vs Bloom @ %dc", tiles),
		"Coverage %", "Speedup vs pthread")
	app, err := probeApp()
	if err != nil {
		return nil, err
	}
	baseRun := r.App(app, baselineCfg(tiles), syncrt.PthreadLib())
	variants := []struct {
		label string
		cfg   machine.Config
	}{
		{"plain x4", machine.MSAOMU(tiles, 2)},
		{"bloom x4 k=2", machine.WithBloomOMU(machine.MSAOMU(tiles, 2), 2)},
		{"plain x8", func() machine.Config { c := machine.MSAOMU(tiles, 2); c.MSA.OMUCounters = 8; return c }()},
		{"bloom x8 k=2", func() machine.Config {
			c := machine.WithBloomOMU(machine.MSAOMU(tiles, 2), 2)
			c.MSA.OMUCounters = 8
			return c
		}()},
	}
	runs := make([]*Run, len(variants))
	for i, v := range variants {
		runs[i] = r.App(app, v.cfg, syncrt.HWLib())
	}
	base, err := baseRun.Result()
	if err != nil {
		return nil, err
	}
	for i, v := range variants {
		res, err := runs[i].Result()
		if err != nil {
			return nil, err
		}
		t.AddRow(v.label, res.Coverage*100, float64(base.Cycles)/float64(res.Cycles))
	}
	return t, nil
}

// Fairness (A3) measures handoff fairness under the NBTC round-robin
// policy: with every core pounding one lock, the spread between the
// luckiest and unluckiest thread's acquisition count should be tight. The
// two runs build machines inline (they are not workload-suite apps), so
// this experiment executes serially.
func Fairness(o Options) (*stats.Table, error) {
	tiles := o.Tiles[len(o.Tiles)-1]
	t := stats.NewTable(fmt.Sprintf("A3: grant policy fairness @ %dc", tiles),
		"Min acquires", "Max acquires", "Total")
	run := func(cfg machine.Config) (int64, int64, int64, error) {
		m := machine.New(cfg)
		arena := syncrt.NewArena(0x1000000)
		lock := arena.Mutex()
		counts := make([]int64, tiles)
		qn := make([]memory.Addr, tiles)
		for i := range qn {
			qn[i] = arena.QNode()
		}
		lib := syncrt.HWLib()
		stopAt := sim.Time(400_000)
		m.SpawnAll(tiles, func(tid int, e cpu.Env) {
			rt := lib.Bind(e, qn[tid])
			for e.Now() < stopAt {
				rt.Lock(lock)
				counts[tid]++
				e.Compute(20)
				rt.Unlock(lock)
				e.Compute(10)
			}
		})
		if _, err := m.Run(workload.RunDeadline); err != nil {
			return 0, 0, 0, fmt.Errorf("harness: fairness on %s: %w", cfg.Name, err)
		}
		min, max, total := counts[0], counts[0], int64(0)
		for _, c := range counts {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
			total += c
		}
		return min, max, total, nil
	}
	min, max, total, err := run(machine.MSAOMU(tiles, 2))
	if err != nil {
		return nil, err
	}
	t.AddRowInts("NBTC round-robin", min, max, total)
	min, max, total, err = run(machine.WithFixedPriority(machine.MSAOMU(tiles, 2)))
	if err != nil {
		return nil, err
	}
	t.AddRowInts("fixed priority", min, max, total)
	return t, nil
}

// SuspendStress (A4) repeatedly suspends, migrates, and resumes threads
// while they hammer locks and barriers; it verifies the ABORT machinery
// under fire and reports its cost. Like Fairness, it builds its machines
// inline and executes serially.
func SuspendStress(o Options) (*stats.Table, error) {
	tiles := o.Tiles[0]
	if tiles > 8 {
		tiles = 8
	}
	t := stats.NewTable(fmt.Sprintf("A4: suspend stress @ %dc", tiles),
		"Cycles", "Aborts", "Counter OK")
	nthreads := tiles / 2 // each thread has a home core (2i) and a spare (2i+1)
	for _, disturb := range []bool{false, true} {
		m := machine.New(machine.MSAOMU(tiles, 2))
		arena := syncrt.NewArena(0x1000000)
		lock := arena.Mutex()
		bar := arena.Barrier(nthreads)
		counter := arena.Data(1)
		qn := make([]memory.Addr, nthreads)
		for i := range qn {
			qn[i] = arena.QNode()
		}
		lib := syncrt.HWLib()
		const iters = 20
		var threads []*cpu.Thread
		loc := make([]int, nthreads)
		for i := 0; i < nthreads; i++ {
			i := i
			th := m.Complex.Spawn(i, func(e cpu.Env) {
				rt := lib.Bind(e, qn[i])
				for k := 0; k < iters; k++ {
					rt.Lock(lock)
					e.Store(counter, e.Load(counter)+1)
					e.Compute(30)
					rt.Unlock(lock)
					e.Compute(uint64(50 + i*13))
					rt.Wait(bar)
				}
			})
			threads = append(threads, th)
			loc[i] = 2 * i
			m.Complex.Start(th, 2*i, 0)
		}
		if disturb {
			// Periodically suspend a rotating victim and migrate it between
			// its home core and its private spare core.
			var schedule func(round int)
			schedule = func(round int) {
				if round >= 12 {
					return
				}
				v := round % nthreads
				victim := threads[v]
				m.Complex.Suspend(victim, func() {
					m.Engine.After(2_000, func() {
						if victim.Done() {
							schedule(round + 1)
							return
						}
						loc[v] = 2*v + (1 - loc[v]%2)
						m.Complex.Resume(victim, loc[v])
						m.Engine.After(8_000, func() { schedule(round + 1) })
					})
				})
			}
			m.Engine.At(5_000, func() { schedule(0) })
		}
		end, err := m.Run(workload.RunDeadline)
		if err != nil {
			return nil, fmt.Errorf("harness: suspend stress (disturb=%v): %w", disturb, err)
		}
		label := "no disturbance"
		if disturb {
			label = "suspend+migrate"
		}
		ok := "yes"
		if m.Store.Load(counter) != uint64(nthreads*iters) {
			ok = "NO"
		}
		t.AddRowStrings(label,
			fmt.Sprintf("%d", end),
			fmt.Sprintf("%d", m.MSAStats().Aborts),
			ok)
	}
	return t, nil
}
