package harness

import (
	"context"
	"encoding/json"
	"fmt"

	"misar/internal/machine"
	"misar/internal/metrics"
	"misar/internal/sim"
	"misar/internal/store"
	"misar/internal/syncrt"
	"misar/internal/workload"
)

// ResultSchema versions the serialized Result layout. Bump it whenever a
// field changes meaning; old store records with a different schema are
// treated as misses (and re-simulated), never misread.
const ResultSchema = 1

// Result is the serializable outcome of one successful simulation — exactly
// the facts the figures, tables, and the serving layer consume, and nothing
// that cannot round-trip through JSON. Cycles, Coverage, and the metrics
// Report marshal deterministically and decode to the same float64 bits
// (encoding/json round-trips float64 exactly), so a table rendered from a
// store-warm Result is byte-identical to the cold run's.
type Result struct {
	Schema   int                   `json:"schema"`
	Kind     string                `json:"kind"` // "app" or "micro"
	Label    string                `json:"label"`
	Cycles   uint64                `json:"cycles,omitempty"`
	Coverage float64               `json:"coverage,omitempty"`
	Micro    *workload.MicroResult `json:"micro,omitempty"`
	Report   *metrics.Report       `json:"report,omitempty"`
}

// Result blocks until the run completes and returns its serializable
// outcome, whether the run executed, was memo-shared, or was replayed from
// the persistent store.
func (r *Run) Result() (*Result, error) {
	<-r.done
	if r.err != nil {
		return nil, r.err
	}
	return r.buildResult(), nil
}

// buildResult assembles the serializable view of a finished (or executing,
// on the worker goroutine itself) successful run.
func (r *Run) buildResult() *Result {
	res := &Result{Schema: ResultSchema, Kind: r.kind, Label: r.label}
	switch r.kind {
	case "micro":
		// The micro's report is carried inside MicroResult; duplicating it
		// at the top level would double every metered record on disk.
		mc := r.micro
		res.Micro = &mc
	default:
		res.Cycles = uint64(r.cycles)
		res.Coverage = r.coverage
		res.Report = r.report
	}
	return res
}

// FromStore reports whether this run was satisfied by the persistent store
// (no simulation executed). Valid after the run completes.
func (r *Run) FromStore() bool {
	<-r.done
	return r.fromStore
}

// applyResult populates a Run future from a decoded store record, the
// inverse of Result.
func (r *Run) applyResult(res *Result) {
	switch res.Kind {
	case "micro":
		if res.Micro != nil {
			r.micro = *res.Micro
			r.report = res.Micro.Report
		}
	default:
		r.cycles = sim.Time(res.Cycles)
		r.coverage = res.Coverage
		r.report = res.Report
	}
}

// StoreKey builds the canonical cross-process identity of one simulation.
// Unlike the in-memory runKey (a %+v fingerprint that only needs to be
// stable within one process), the store key must survive process restarts
// and version skew, so the config goes through its canonical JSON encoding.
// The cycle budget is part of the identity: a run that succeeded under a
// tight chaos budget is not the same experiment as one under RunDeadline.
// An unmarshalable config (impossible today; Config is a pure value struct)
// returns "" and the run simply bypasses the store.
//
// Exported because store.Fingerprint(StoreKey(...)) is also the fleet's
// consistent-hash routing key (service.RequestFingerprint): routing and
// storage must agree on identity, so both derive it here.
func StoreKey(kind string, cfg machine.Config, lib *syncrt.Lib, budget sim.Time) string {
	cb, err := json.Marshal(cfg)
	if err != nil {
		return ""
	}
	return fmt.Sprintf("misar-run/v%d\n%s\n%s\n%+v\n%d", ResultSchema, kind, cb, *lib, budget)
}

// tryStore attempts to satisfy run from the persistent store. Records that
// fail to decode or carry the wrong schema/kind are ignored (the next Put
// overwrites them); store-level corruption is already evicted by Get.
func (r *Runner) tryStore(ctx context.Context, st ResultStore, skey string, run *Run) bool {
	blob, ok := st.GetCtx(ctx, store.Fingerprint(skey))
	if !ok {
		return false
	}
	var res Result
	if err := json.Unmarshal(blob, &res); err != nil || res.Schema != ResultSchema || res.Kind != run.kind {
		return false
	}
	run.applyResult(&res)
	run.fromStore = true
	return true
}

// putStore persists a successful run. Store write failures (disk full,
// permissions) are deliberately non-fatal: the result is still served from
// memory; only warmth is lost.
func (r *Runner) putStore(ctx context.Context, st ResultStore, skey string, run *Run) {
	blob, err := json.Marshal(run.buildResult())
	if err != nil {
		return
	}
	st.PutCtx(ctx, store.Fingerprint(skey), blob)
}
