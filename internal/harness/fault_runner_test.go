package harness

// Regression tests for failure containment in the Runner: structured RunError
// tagging, memo-cache un-poisoning after a failed simulation, bounded budgets
// surfacing liveness diagnoses, and retry of host-level flakes.

import (
	"errors"
	"strings"
	"testing"

	"misar/internal/cpu"
	"misar/internal/fault"
	"misar/internal/machine"
	"misar/internal/syncrt"
	"misar/internal/workload"
)

func testApp(name string, build func() func(tid int, e cpu.Env)) workload.App {
	return workload.App{Name: name, Build: func(a *syncrt.Arena, threads int, lib *syncrt.Lib) func(int, cpu.Env) {
		return build()
	}}
}

// TestRunnerCacheUnpoisonedAfterFailure: a failed simulation must satisfy its
// in-flight sharers with the structured error, but must NOT be memoized — a
// later submission of the same key gets a fresh simulation.
func TestRunnerCacheUnpoisonedAfterFailure(t *testing.T) {
	r := NewRunner(2)
	calls := 0
	app := testApp("flaky", func() func(int, cpu.Env) {
		calls++
		if calls == 1 {
			panic("transient host failure")
		}
		return func(tid int, e cpu.Env) { e.Compute(10) }
	})
	cfg := machine.MSAOMU(2, 1)
	lib := syncrt.HWLib()

	_, _, err := r.App(app, cfg, lib).App()
	if err == nil {
		t.Fatal("first submission should have failed")
	}
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("want *RunError, got %T: %v", err, err)
	}
	if re.App != "flaky" || re.Config != cfg.Name || re.Panic == nil || re.Stack == "" {
		t.Fatalf("RunError not fully tagged: %+v", re)
	}

	// Same key again: the poisoned entry must be gone.
	if _, _, err := r.App(app, cfg, lib).App(); err != nil {
		t.Fatalf("resubmission after failure did not re-run: %v", err)
	}
	if calls != 2 {
		t.Fatalf("simulation ran %d times, want 2 (failure evicted, success memoized)", calls)
	}
	if st := r.Stats(); st.Unique != 2 {
		t.Fatalf("Unique = %d, want 2 distinct simulations for the re-run key", st.Unique)
	}

	// The success IS memoized: a third submission is a memo hit.
	if _, _, err := r.App(app, cfg, lib).App(); err != nil || calls != 2 {
		t.Fatalf("successful run not memoized: err=%v calls=%d", err, calls)
	}
}

// TestRunnerRetries: with retries armed, a host-level flake is retried inside
// one submission and sharers only ever see the final success.
func TestRunnerRetries(t *testing.T) {
	r := NewRunner(1)
	r.SetRetries(2)
	calls := 0
	app := testApp("flaky2", func() func(int, cpu.Env) {
		calls++
		if calls < 3 {
			panic("transient")
		}
		return func(tid int, e cpu.Env) { e.Compute(10) }
	})
	if _, _, err := r.App(app, machine.MSAOMU(2, 1), syncrt.HWLib()).App(); err != nil {
		t.Fatalf("run failed despite retries: %v", err)
	}
	if calls != 3 {
		t.Fatalf("simulation attempted %d times, want 3", calls)
	}
}

// TestRunnerBudgetSurfacesLiveness: a tight budget turns a too-long run into
// a structured liveness failure (with the watchdog diagnosis reachable via
// errors.As), instead of burning the full default deadline.
func TestRunnerBudgetSurfacesLiveness(t *testing.T) {
	r := NewRunner(1)
	r.SetBudget(1000)
	app := testApp("crawler", func() func(int, cpu.Env) {
		return func(tid int, e cpu.Env) { e.Compute(10_000_000) }
	})
	_, _, err := r.App(app, machine.MSAOMU(2, 1), syncrt.HWLib()).App()
	var le *machine.LivenessError
	if !errors.As(err, &le) {
		t.Fatalf("want *machine.LivenessError through the RunError chain, got %T: %v", err, err)
	}
	if le.Diag == nil {
		t.Fatal("liveness failure carries no diagnosis")
	}
}

// TestRunErrorCarriesFaultSeed: chaos campaigns triage failures by fault
// seed; the tag must carry it and the message must show it.
func TestRunErrorCarriesFaultSeed(t *testing.T) {
	r := NewRunner(1)
	app := testApp("boomer", func() func(int, cpu.Env) {
		panic("boom")
	})
	cfg := machine.MSAOMU(2, 1)
	cfg.Fault = fault.DefaultPlan(0xABC)
	_, _, err := r.App(app, cfg, syncrt.HWLib()).App()
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("want *RunError, got %T: %v", err, err)
	}
	if re.Seed != 0xABC {
		t.Fatalf("Seed = %#x, want 0xabc", re.Seed)
	}
	if !strings.Contains(err.Error(), "fault seed 0xabc") {
		t.Fatalf("error message lacks the fault seed: %q", err.Error())
	}
}
