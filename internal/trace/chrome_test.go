package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

func sampleEvents() []Event {
	return []Event{
		{At: 100, Tile: 0, Kind: Issue, Addr: 0x1000, Core: 3, Detail: "LOCK"},
		{At: 112, Tile: 0, Kind: SyncReq, Addr: 0x1000, Core: 3, Detail: "lock req"},
		{At: 115, Tile: 0, Kind: EntryAlloc, Addr: 0x1000, Core: -1, Detail: "e0"},
		{At: 130, Tile: 0, Kind: Complete, Addr: 0x1000, Core: 3, Detail: "LOCK done"},
		{At: 140, Tile: 1, Kind: Issue, Addr: 0x2000, Core: 5, Detail: "BARRIER"},
		// Core 5's Issue never completes (e.g. silent local completion):
		// it must degrade to an instant, not vanish or pair wrongly.
	}
}

// TestChromeEventsStructure validates the trace-event mapping the issue
// specifies: metadata records, ph/ts/pid/tid on every event, and exact
// Issue->Complete pairing into "X" duration events.
func TestChromeEventsStructure(t *testing.T) {
	evs := ChromeEventsFromBuffer(sampleEvents())

	var meta, instant, complete int
	for _, e := range evs {
		switch e.Ph {
		case "M":
			meta++
			if e.Name != "process_name" && e.Name != "thread_name" {
				t.Errorf("unexpected metadata record %q", e.Name)
			}
		case "i":
			instant++
			if e.S != "t" {
				t.Errorf("instant event %q missing thread scope: %+v", e.Name, e)
			}
		case "X":
			complete++
			if e.Dur == nil {
				t.Fatalf("X event without dur: %+v", e)
			}
		default:
			t.Errorf("unexpected ph %q: %+v", e.Ph, e)
		}
	}
	if meta == 0 {
		t.Error("no metadata records emitted")
	}
	if complete != 1 {
		t.Errorf("complete events = %d, want 1 (one Issue/Complete pair)", complete)
	}

	// The paired LOCK: ts at the Issue cycle, dur spanning to Complete,
	// pid = recording tile, tid = issuing core.
	var lock *chromeEvent
	for i := range evs {
		if evs[i].Ph == "X" {
			lock = &evs[i]
		}
	}
	if lock.Name != "LOCK" || lock.Ts != 100 || *lock.Dur != 30 || lock.Pid != 0 || lock.Tid != 3 {
		t.Errorf("paired event wrong: %+v", lock)
	}

	// The slice-internal alloc runs on the MSA pseudo-thread.
	found := false
	for _, e := range evs {
		if e.Ph == "i" && e.Args["kind"] == string(EntryAlloc) {
			found = true
			if e.Tid != msaTid {
				t.Errorf("slice event on tid %d, want msa pseudo-thread %d", e.Tid, msaTid)
			}
		}
	}
	if !found {
		t.Error("EntryAlloc instant missing")
	}

	// The unpaired BARRIER Issue flushes as an instant at its issue time.
	found = false
	for _, e := range evs {
		if e.Ph == "i" && e.Name == "BARRIER" {
			found = true
			if e.Ts != 140 || e.Pid != 1 || e.Tid != 5 {
				t.Errorf("leftover Issue flushed wrong: %+v", e)
			}
		}
	}
	if !found {
		t.Error("unpaired Issue not flushed")
	}
}

func TestChromeIssueSupersededByNewIssue(t *testing.T) {
	evs := ChromeEventsFromBuffer([]Event{
		{At: 10, Tile: 0, Kind: Issue, Core: 2, Detail: "LOCK"},
		{At: 20, Tile: 0, Kind: Issue, Core: 2, Detail: "UNLOCK"},
		{At: 25, Tile: 0, Kind: Complete, Core: 2, Detail: "UNLOCK done"},
	})
	var x, i int
	for _, e := range evs {
		switch {
		case e.Ph == "X":
			x++
			if e.Name != "UNLOCK" || e.Ts != 20 || *e.Dur != 5 {
				t.Errorf("pairing crossed instructions: %+v", e)
			}
		case e.Ph == "i":
			i++
			if e.Name != "LOCK" {
				t.Errorf("wrong instant: %+v", e)
			}
		}
	}
	if x != 1 || i != 1 {
		t.Fatalf("x=%d i=%d, want 1 and 1", x, i)
	}
}

// TestWriteChromeValidJSON parses the full output back: a single object
// with a traceEvents array whose entries all carry the mandatory fields.
func TestWriteChromeValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if out.Unit != "ms" {
		t.Errorf("displayTimeUnit = %q", out.Unit)
	}
	if len(out.TraceEvents) == 0 {
		t.Fatal("no events emitted")
	}
	for _, e := range out.TraceEvents {
		for _, key := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := e[key]; !ok {
				t.Errorf("event missing %q: %v", key, e)
			}
		}
	}
}

func TestWriteChromeEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.TraceEvents) != 0 {
		t.Fatalf("empty buffer produced %d events", len(out.TraceEvents))
	}
}
