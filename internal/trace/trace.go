// Package trace provides a lightweight event recorder for protocol-level
// debugging: the MSA slices and cores emit timestamped events (requests,
// grants, aborts, entry lifecycle, silent acquisitions) that cmd/misar-trace
// renders as a chronological timeline.
//
// Tracing is opt-in and zero-cost when disabled (a nil *Buffer records
// nothing).
package trace

import (
	"fmt"
	"io"

	"misar/internal/memory"
	"misar/internal/sim"
)

// Kind classifies an event.
type Kind string

// Event kinds emitted by the model.
const (
	SyncReq     Kind = "req"     // sync request arrived at a home slice
	SyncResp    Kind = "resp"    // response sent to a core
	EntryAlloc  Kind = "alloc"   // MSA entry allocated
	EntryFree   Kind = "free"    // MSA entry deallocated
	EntryStand  Kind = "standby" // entry entered standby
	EntryRecl   Kind = "reclaim" // standby entry reclaimed
	Grant       Kind = "grant"   // HWSync block grant shipped
	Revoke      Kind = "revoke"  // standby revocation issued
	Silent      Kind = "silent"  // LOCK_SILENT recorded
	Steer       Kind = "steer"   // acquire steered to software
	Abort       Kind = "abort"   // operation aborted
	Issue       Kind = "issue"   // core issued a sync instruction
	Complete    Kind = "done"    // core completed a sync instruction
	CtxSwitch   Kind = "ctxsw"   // core context switch
	MsaInternal Kind = "msa"     // MSA-to-MSA message (cond protocol)
)

// Event is one timeline entry.
type Event struct {
	At     sim.Time
	Tile   int // tile that recorded the event
	Kind   Kind
	Addr   memory.Addr // synchronization address (0 if n/a)
	Core   int         // core involved (-1 if n/a)
	Detail string
}

func (e Event) String() string {
	return fmt.Sprintf("%10d  tile %-2d %-8s core %-3d %#10x  %s",
		e.At, e.Tile, e.Kind, e.Core, uint64(e.Addr), e.Detail)
}

// Buffer is a bounded event recorder. A nil Buffer drops everything, so
// components can call Record unconditionally. When the buffer fills, the
// oldest events are overwritten (ring semantics) and Dropped counts them.
type Buffer struct {
	events  []Event
	next    int
	wrapped bool
	Dropped uint64
	// Filter limits recording to one synchronization address when FilterSet
	// is true. The explicit flag (rather than a zero sentinel) makes address
	// 0 filterable, and Filtered counts the events the filter suppressed so
	// dumps can say what is missing. Use SetFilter to set both coherently.
	Filter    memory.Addr
	FilterSet bool
	Filtered  uint64
}

// NewBuffer creates a recorder holding up to capacity events.
func NewBuffer(capacity int) *Buffer {
	if capacity < 1 {
		capacity = 1
	}
	return &Buffer{events: make([]Event, 0, capacity)}
}

// SetFilter restricts recording to events for one synchronization address
// (address 0 is a valid filter). Events that do not match — including
// addr-less events such as context switches — are counted in Filtered
// rather than silently vanishing.
func (b *Buffer) SetFilter(addr memory.Addr) {
	b.Filter = addr
	b.FilterSet = true
}

// Record appends an event. Safe on a nil receiver.
func (b *Buffer) Record(ev Event) {
	if b == nil {
		return
	}
	if b.FilterSet && ev.Addr != b.Filter {
		b.Filtered++
		return
	}
	if len(b.events) < cap(b.events) {
		b.events = append(b.events, ev)
		return
	}
	b.events[b.next] = ev
	b.next = (b.next + 1) % cap(b.events)
	b.wrapped = true
	b.Dropped++
}

// Events returns the recorded events in chronological order.
func (b *Buffer) Events() []Event {
	if b == nil {
		return nil
	}
	if !b.wrapped {
		return b.events
	}
	out := make([]Event, 0, len(b.events))
	out = append(out, b.events[b.next:]...)
	out = append(out, b.events[:b.next]...)
	return out
}

// Len reports the number of retained events.
func (b *Buffer) Len() int {
	if b == nil {
		return 0
	}
	return len(b.events)
}

// Dump writes the timeline to w, followed by a note for anything the buffer
// suppressed (ring overwrites and filter misses), so a quiet dump is
// distinguishable from a quiet run.
func (b *Buffer) Dump(w io.Writer) {
	for _, ev := range b.Events() {
		fmt.Fprintln(w, ev)
	}
	if b == nil {
		return
	}
	if b.Dropped > 0 {
		fmt.Fprintf(w, "(%d earlier events dropped)\n", b.Dropped)
	}
	if b.Filtered > 0 {
		fmt.Fprintf(w, "(%d events suppressed by the %#x address filter)\n", b.Filtered, uint64(b.Filter))
	}
}
