package trace

import (
	"strings"
	"testing"

	"misar/internal/sim"
)

func TestNilBufferIsSafe(t *testing.T) {
	var b *Buffer
	b.Record(Event{Kind: SyncReq})
	if b.Len() != 0 || b.Events() != nil {
		t.Fatal("nil buffer misbehaved")
	}
}

func TestRingSemantics(t *testing.T) {
	b := NewBuffer(3)
	for i := 0; i < 5; i++ {
		b.Record(Event{At: sim.Time(10 * i), Detail: string(rune('a' + i))})
	}
	evs := b.Events()
	if len(evs) != 3 {
		t.Fatalf("len = %d", len(evs))
	}
	// Oldest two dropped: c, d, e remain, in order.
	if evs[0].Detail != "c" || evs[2].Detail != "e" {
		t.Fatalf("ring order wrong: %v", evs)
	}
	if b.Dropped != 2 {
		t.Fatalf("Dropped = %d", b.Dropped)
	}
}

func TestFilter(t *testing.T) {
	b := NewBuffer(10)
	b.SetFilter(0x1000)
	b.Record(Event{Addr: 0x1000, Detail: "keep"})
	b.Record(Event{Addr: 0x2000, Detail: "drop"})
	b.Record(Event{Addr: 0, Detail: "drop-global"})
	if b.Len() != 1 {
		t.Fatalf("len = %d, want 1", b.Len())
	}
	if b.Filtered != 2 {
		t.Fatalf("Filtered = %d, want 2", b.Filtered)
	}
	if b.Events()[0].Detail != "keep" {
		t.Fatalf("wrong event kept: %v", b.Events())
	}
}

func TestFilterAddrZero(t *testing.T) {
	// Address 0 is a legal filter target under the explicit FilterSet flag
	// (the old Filter-field convention conflated it with "no filter").
	b := NewBuffer(10)
	b.SetFilter(0)
	b.Record(Event{Addr: 0, Detail: "keep"})
	b.Record(Event{Addr: 0x2000, Detail: "drop"})
	if b.Len() != 1 || b.Filtered != 1 {
		t.Fatalf("len = %d, Filtered = %d", b.Len(), b.Filtered)
	}
}

func TestNoFilterRecordsEverything(t *testing.T) {
	b := NewBuffer(10)
	b.Record(Event{Addr: 0x1000})
	b.Record(Event{Addr: 0})
	if b.Len() != 2 || b.Filtered != 0 {
		t.Fatalf("len = %d, Filtered = %d", b.Len(), b.Filtered)
	}
}

func TestDump(t *testing.T) {
	b := NewBuffer(4)
	b.Record(Event{At: 42, Tile: 1, Kind: Silent, Addr: 0x40, Core: 3, Detail: "x"})
	var sb strings.Builder
	b.Dump(&sb)
	out := sb.String()
	for _, want := range []string{"42", "silent", "0x40", "x"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q: %s", want, out)
		}
	}
}

func TestCapacityClamp(t *testing.T) {
	b := NewBuffer(0)
	b.Record(Event{Detail: "a"})
	b.Record(Event{Detail: "b"})
	if b.Len() != 1 || b.Events()[0].Detail != "b" {
		t.Fatal("capacity clamp broken")
	}
}
