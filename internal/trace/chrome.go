package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace-event export: renders a Buffer's timeline in the Trace Event
// Format that chrome://tracing and Perfetto (ui.perfetto.dev) load, so MSA
// protocol activity can be inspected in a real trace UI instead of a text
// dump.
//
// Mapping:
//   - pid is the tile that recorded the event; every tile gets a
//     process_name metadata record.
//   - tid is the involved core, or the tile's MSA pseudo-thread (msaTid)
//     for slice-internal events with no core.
//   - A core's Issue/Complete pair becomes one complete ("X") duration
//     event spanning the instruction's latency; each core has at most one
//     outstanding synchronization instruction, so pairing by core is exact.
//   - Everything else becomes a thread-scoped instant ("i") event.
//   - ts/dur are simulated cycles presented as microseconds (the format's
//     only time unit); 1 cycle reads as 1 µs in the UI.

// msaTid is the synthetic thread id used for slice events with no core.
const msaTid = 1000

// chromeEvent is one entry of the traceEvents array.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   uint64            `json:"ts"`
	Dur  *uint64           `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeTrace is the JSON-object envelope Perfetto expects.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func tidOf(ev Event) int {
	if ev.Core >= 0 {
		return ev.Core
	}
	return msaTid
}

func argsOf(ev Event) map[string]string {
	a := map[string]string{"kind": string(ev.Kind)}
	if ev.Addr != 0 {
		a["addr"] = fmt.Sprintf("%#x", uint64(ev.Addr))
	}
	if ev.Detail != "" {
		a["detail"] = ev.Detail
	}
	return a
}

// ChromeEventsFromBuffer converts a recorded timeline. Exposed separately
// from WriteChrome so tests can validate the structure before marshalling.
func ChromeEventsFromBuffer(events []Event) []chromeEvent {
	out := make([]chromeEvent, 0, len(events)+8)

	// Metadata: name the processes (tiles) and the MSA pseudo-threads that
	// appear, in first-appearance order (deterministic: input order is
	// chronological).
	seenTile := map[int]bool{}
	seenMsa := map[int]bool{}
	for _, ev := range events {
		if !seenTile[ev.Tile] {
			seenTile[ev.Tile] = true
			out = append(out, chromeEvent{
				Name: "process_name", Ph: "M", Pid: ev.Tile,
				Args: map[string]string{"name": fmt.Sprintf("tile %d", ev.Tile)},
			})
		}
		if ev.Core < 0 && !seenMsa[ev.Tile] {
			seenMsa[ev.Tile] = true
			out = append(out, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: ev.Tile, Tid: msaTid,
				Args: map[string]string{"name": "msa slice"},
			})
		}
	}

	// Pair each core's Issue with its Complete into a duration event; at
	// most one synchronization instruction is outstanding per core. Silent
	// acquisitions complete locally and never produce a Complete, so an
	// Issue superseded by a new Issue degrades to an instant event.
	pending := map[int]*Event{} // core -> outstanding Issue
	flush := func(core int) {
		if iss := pending[core]; iss != nil {
			out = append(out, chromeEvent{
				Name: iss.Detail, Ph: "i", Ts: uint64(iss.At),
				Pid: iss.Tile, Tid: tidOf(*iss), S: "t", Args: argsOf(*iss),
			})
			delete(pending, core)
		}
	}
	for i := range events {
		ev := events[i]
		switch ev.Kind {
		case Issue:
			flush(ev.Core)
			pending[ev.Core] = &events[i]
		case Complete:
			if iss := pending[ev.Core]; iss != nil {
				dur := uint64(ev.At - iss.At)
				args := argsOf(ev)
				out = append(out, chromeEvent{
					Name: iss.Detail, Ph: "X", Ts: uint64(iss.At), Dur: &dur,
					Pid: iss.Tile, Tid: tidOf(*iss), Args: args,
				})
				delete(pending, ev.Core)
				continue
			}
			out = append(out, chromeEvent{
				Name: ev.Detail, Ph: "i", Ts: uint64(ev.At),
				Pid: ev.Tile, Tid: tidOf(ev), S: "t", Args: argsOf(ev),
			})
		default:
			out = append(out, chromeEvent{
				Name: string(ev.Kind), Ph: "i", Ts: uint64(ev.At),
				Pid: ev.Tile, Tid: tidOf(ev), S: "t", Args: argsOf(ev),
			})
		}
	}
	// Issues still outstanding at the end of the trace, in core order so the
	// output stays deterministic.
	left := make([]int, 0, len(pending))
	for core := range pending {
		left = append(left, core)
	}
	sort.Ints(left)
	for _, core := range left {
		flush(core)
	}
	return out
}

// WriteChrome writes the timeline as Chrome trace-event JSON, loadable in
// Perfetto or chrome://tracing.
func WriteChrome(w io.Writer, events []Event) error {
	return writeChromeEvents(w, ChromeEventsFromBuffer(events))
}

// writeChromeEvents wraps converted events in the Perfetto envelope.
func writeChromeEvents(w io.Writer, events []chromeEvent) error {
	tr := chromeTrace{
		TraceEvents:     events,
		DisplayTimeUnit: "ms",
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(tr); err != nil {
		return fmt.Errorf("trace: encode chrome trace: %w", err)
	}
	return nil
}
