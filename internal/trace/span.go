package trace

import (
	"io"
	"sort"
)

// Span is one wall-clock serving-path interval: a named stretch of real time
// (client submit, queue wait, store lookup, a simulation phase) tagged with
// the trace ID minted at the request edge. Spans are the serving layer's
// counterpart of the simulator's Event timeline — Event times are simulated
// cycles, Span times are microseconds of wall clock — and both render
// through the same Chrome trace-event writer so a whole served job opens in
// Perfetto as one timeline.
//
// Proc groups spans into Perfetto "process" lanes ("client", "served",
// "harness", "sim"); spans within one proc are expected to nest or follow
// each other in time, matching how the serving path actually executes.
type Span struct {
	Trace string            `json:"trace"`            // trace ID shared by the whole request
	Proc  string            `json:"proc"`             // timeline lane: client, served, harness, sim
	Name  string            `json:"name"`             // e.g. "queue.wait", "sim.run"
	Start int64             `json:"start_us"`         // wall clock, µs since the Unix epoch
	Dur   int64             `json:"dur_us"`           // duration in µs
	Args  map[string]string `json:"args,omitempty"`   // extra key/values shown in the UI
}

// ChromeEventsFromSpans converts wall-clock spans into Chrome trace events:
// one process_name metadata record per distinct Proc (pid assigned in first-
// appearance order) and one complete ("X") event per span. Timestamps are
// rebased to the earliest span so the timeline starts at zero.
func ChromeEventsFromSpans(spans []Span) []chromeEvent {
	if len(spans) == 0 {
		return nil
	}
	base := spans[0].Start
	for _, sp := range spans {
		if sp.Start < base {
			base = sp.Start
		}
	}
	pids := map[string]int{}
	out := make([]chromeEvent, 0, len(spans)+4)
	for _, sp := range spans {
		pid, ok := pids[sp.Proc]
		if !ok {
			pid = len(pids)
			pids[sp.Proc] = pid
			out = append(out, chromeEvent{
				Name: "process_name", Ph: "M", Pid: pid,
				Args: map[string]string{"name": sp.Proc},
			})
		}
		dur := uint64(sp.Dur)
		args := map[string]string{"trace": sp.Trace}
		for k, v := range sp.Args {
			args[k] = v
		}
		out = append(out, chromeEvent{
			Name: sp.Name, Ph: "X", Ts: uint64(sp.Start - base), Dur: &dur,
			Pid: pid, Tid: 0, Args: args,
		})
	}
	return out
}

// SortSpans orders spans by start time (then proc, then name) so exports
// and golden tests are deterministic regardless of recording interleaving.
func SortSpans(spans []Span) {
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		if spans[i].Proc != spans[j].Proc {
			return spans[i].Proc < spans[j].Proc
		}
		return spans[i].Name < spans[j].Name
	})
}

// WriteChromeSpans writes wall-clock spans as Chrome trace-event JSON,
// loadable in Perfetto or chrome://tracing alongside simulator timelines.
func WriteChromeSpans(w io.Writer, spans []Span) error {
	sorted := make([]Span, len(spans))
	copy(sorted, spans)
	SortSpans(sorted)
	return writeChromeEvents(w, ChromeEventsFromSpans(sorted))
}
