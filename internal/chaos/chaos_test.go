package chaos

import (
	"testing"

	"misar/internal/fault"
)

// TestRunSeedDeterministic: the entire outcome of a seed — cycles, fault
// counts, violations — must be a pure function of (seed, plan, options).
// This is what makes a failing seed a reproducer and the shrinker sound.
func TestRunSeedDeterministic(t *testing.T) {
	for _, opt := range []Options{{}, {Faults: true}, {Faults: true, BrokenOMU: true}} {
		a := RunSeed(11, opt)
		b := RunSeed(11, opt)
		if a.Cycles != b.Cycles || a.Err != b.Err || a.Counts != b.Counts ||
			len(a.Violations) != len(b.Violations) || a.Failed() != b.Failed() {
			t.Errorf("opt %+v: outcomes diverged:\n  %+v\n  %+v", opt, a, b)
		}
	}
}

func TestEffectiveBudget(t *testing.T) {
	if got := (Options{}).EffectiveBudget(); got != DefaultBudget {
		t.Errorf("default budget = %d", got)
	}
	if got := (Options{BrokenOMU: true}).EffectiveBudget(); got != BrokenBudget {
		t.Errorf("broken budget = %d", got)
	}
	if got := (Options{BrokenOMU: true, Budget: 123}).EffectiveBudget(); got != 123 {
		t.Errorf("explicit budget = %d", got)
	}
}

// TestRunPlanUsesPlanNotSeedDefaults: RunPlan must honor the explicit plan —
// a zero plan on a faulted-looking seed injects nothing.
func TestRunPlanUsesPlanNotSeedDefaults(t *testing.T) {
	o := RunPlan(3, fault.Plan{}, Options{})
	if o.Counts.Total() != 0 {
		t.Fatalf("zero plan fired faults: %s", o.Counts.String())
	}
	if o.Failed() {
		t.Fatalf("clean zero-plan run failed: %+v", o)
	}
}
