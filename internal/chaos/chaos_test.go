package chaos

import (
	"testing"

	"misar/internal/fault"
)

// TestRunSeedDeterministic: the entire outcome of a seed — cycles, fault
// counts, violations — must be a pure function of (seed, plan, options).
// This is what makes a failing seed a reproducer and the shrinker sound.
func TestRunSeedDeterministic(t *testing.T) {
	for _, opt := range []Options{
		{}, {Faults: true}, {Faults: true, BrokenOMU: true},
		{Faults: true, TM: true}, {Faults: true, BrokenTMValidation: true},
	} {
		a := RunSeed(11, opt)
		b := RunSeed(11, opt)
		if a.Cycles != b.Cycles || a.Err != b.Err || a.Counts != b.Counts ||
			len(a.Violations) != len(b.Violations) || a.Failed() != b.Failed() {
			t.Errorf("opt %+v: outcomes diverged:\n  %+v\n  %+v", opt, a, b)
		}
	}
}

func TestEffectiveBudget(t *testing.T) {
	if got := (Options{}).EffectiveBudget(); got != DefaultBudget {
		t.Errorf("default budget = %d", got)
	}
	if got := (Options{BrokenOMU: true}).EffectiveBudget(); got != BrokenBudget {
		t.Errorf("broken budget = %d", got)
	}
	if got := (Options{BrokenOMU: true, Budget: 123}).EffectiveBudget(); got != 123 {
		t.Errorf("explicit budget = %d", got)
	}
}

// TestRunPlanUsesPlanNotSeedDefaults: RunPlan must honor the explicit plan —
// a zero plan on a faulted-looking seed injects nothing.
func TestRunPlanUsesPlanNotSeedDefaults(t *testing.T) {
	o := RunPlan(3, fault.Plan{}, Options{})
	if o.Counts.Total() != 0 {
		t.Fatalf("zero plan fired faults: %s", o.Counts.String())
	}
	if o.Failed() {
		t.Fatalf("clean zero-plan run failed: %+v", o)
	}
}

// TestTMCampaignClean: a faulted campaign over the TM backend must come back
// green — every seed completes with no lost updates and no checker findings —
// while the forced-abort site actually fires somewhere (the protocol is being
// exercised under spurious aborts, not around them).
func TestTMCampaignClean(t *testing.T) {
	const seeds = 12
	outs := Campaign(0, seeds, 4, Options{Faults: true, TM: true}, nil)
	var tmAborts uint64
	for _, o := range outs {
		if o.Failed() {
			t.Errorf("seed %d failed (%s / %s): err=%q lost=%d violations=%v",
				o.Seed, o.Config, o.Lib, o.Err, o.LostUpdates, o.Violations)
		}
		tmAborts += o.Counts.TMAborts
	}
	if tmAborts == 0 {
		t.Fatalf("no forced TM aborts across %d faulted seeds — the tmabort site is dead", seeds)
	}
}

// TestBrokenTMValidationCaught: with commit-time validation skipped, the
// detectors must catch the breakage — specifically the runtime checker's TM
// shadow, whose tm-atomicity kind maps back to the statically certified
// tm-commit model (fault.ModelsFor).
func TestBrokenTMValidationCaught(t *testing.T) {
	const seeds = 12
	outs := Campaign(0, seeds, 4, Options{Faults: true, BrokenTMValidation: true}, nil)
	caught, atomicity := 0, 0
	for _, o := range outs {
		if o.Failed() {
			caught++
		}
		for _, v := range o.Violations {
			if v.Kind == fault.ViolationTMAtomicity {
				atomicity++
			}
		}
	}
	if caught == 0 {
		t.Fatalf("broken TM validation detected by nothing across %d seeds", seeds)
	}
	if atomicity == 0 {
		t.Fatalf("no tm-atomicity violation across %d broken seeds — the TM shadow is blind", seeds)
	}
	if models := fault.ModelsFor(fault.ViolationTMAtomicity); len(models) == 0 {
		t.Fatal("tm-atomicity maps to no static model")
	}
}
