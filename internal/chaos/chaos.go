// Package chaos runs seeded fault-injection campaigns against the full
// machine model. Each seed deterministically derives a scenario — machine
// shape, lock/barrier mix, a suspend/resume/migrate disturbance schedule —
// and, when faults are enabled, a fault.Plan driving forced OMU steers,
// capacity steals, entry evictions, delayed acknowledgments, NoC jitter,
// coherence delays, and — on the TM backend — forced transaction aborts.
// Every run carries the safety-invariant checker and a tight cycle budget,
// so a bad interleaving surfaces as a structured violation or a watchdog
// liveness diagnosis rather than a silent hang.
//
// Options.TM reruns the same seeded scenarios with critical sections
// executing as internal/tm transactions (syncrt.TMLib), and
// Options.BrokenTMValidation is the TM detection selftest: validation is
// skipped, and the checker's TM shadow plus the lost-update count must catch
// the resulting atomicity breakage.
//
// The package is shared by the chaos tests (internal/machine) and the
// cmd/misar-chaos campaign driver, and provides greedy shrinking of a
// failing seed's fault plan to the minimal set of fault sites that still
// reproduces the failure.
package chaos

import (
	"errors"
	"math/rand"
	"sync"

	"misar/internal/cpu"
	"misar/internal/fault"
	"misar/internal/machine"
	"misar/internal/memory"
	"misar/internal/sim"
	"misar/internal/syncrt"
)

// DefaultBudget bounds one chaos run; generous for the scenario sizes used
// (tens of lock/barrier iterations on at most 12 tiles, completing within
// tens of thousands of cycles) while still bounding a runaway seed.
const DefaultBudget = sim.Time(500_000_000)

// BrokenBudget is the default budget for BrokenOMU runs. A broken machine
// typically wedges with software spinners polling every few cycles — live
// events forever, so only the cycle budget stops the run. The budget is
// therefore the detection latency of the liveness watchdog, not a
// correctness bound, and 2M cycles is already ~100x a clean completion.
const BrokenBudget = sim.Time(2_000_000)

// Options configure a campaign.
type Options struct {
	// Faults enables the fault injector with fault.DefaultPlan(seed).
	Faults bool
	// BrokenOMU runs each machine with the OMU exclusivity check
	// deliberately skipped (core.Config.UnsafeNoOMUCheck) — the
	// fault-detection acceptance scenario. Such runs are EXPECTED to fail.
	BrokenOMU bool
	// TM runs each scenario on the software transactional-memory backend
	// (syncrt.TMLib on a software-only machine): critical sections execute
	// as internal/tm transactions, with the forced-abort fault site
	// (fault.Plan.TMAbortRate) active when Faults is set. The Go-side
	// holder oracle is skipped — overlapping optimistic attempts are the
	// protocol working as designed — but the lost-update check and the
	// checker's TM shadow still gate atomicity.
	TM bool
	// BrokenTMValidation runs the TM scenarios with commit-time read-set
	// validation deliberately skipped (syncrt.Lib.TMNoValidate) — the TM
	// detection acceptance scenario. Such runs are EXPECTED to fail with
	// tm-atomicity violations or lost updates. Implies TM.
	BrokenTMValidation bool
	// Budget is the per-run cycle budget; 0 means DefaultBudget.
	Budget sim.Time
}

// tmMode reports whether the scenario runs on the TM backend.
func (o Options) tmMode() bool { return o.TM || o.BrokenTMValidation }

// EffectiveBudget resolves the per-run cycle budget these options imply.
func (o Options) EffectiveBudget() sim.Time {
	if o.Budget != 0 {
		return o.Budget
	}
	if o.BrokenOMU {
		return BrokenBudget
	}
	return DefaultBudget
}

// Outcome is the structured result of one seed, JSON-ready for the
// misar-chaos report.
type Outcome struct {
	Seed   int64  `json:"seed"`
	Config string `json:"config"`
	Lib    string `json:"lib"`
	Cycles uint64 `json:"cycles"`
	// Err is the run error (liveness, safety, panic), empty on success.
	Err string `json:"err,omitempty"`
	// Violations are the safety-invariant checker's findings.
	Violations []fault.Violation `json:"violations,omitempty"`
	// Counts reports how many faults each injection site actually fired.
	Counts fault.Counts `json:"fault_counts"`
	// Oracle counts mutual-exclusion overlaps observed by the Go-side
	// holder oracle (independent of the invariant checker).
	Oracle int `json:"oracle_violations"`
	// LostUpdates counts per-lock counter mismatches after completion.
	LostUpdates int `json:"lost_updates"`
	// Diag is the watchdog diagnosis when the run failed liveness.
	Diag *machine.Diagnosis `json:"diag,omitempty"`
}

// Failed reports whether the seed found a problem (by any detector).
func (o *Outcome) Failed() bool {
	return o.Err != "" || o.Oracle > 0 || o.LostUpdates > 0 || len(o.Violations) > 0
}

// RunSeed executes one deterministic chaos scenario. The fault plan, when
// enabled, is fault.DefaultPlan(seed).
func RunSeed(seed int64, opt Options) *Outcome {
	plan := fault.Plan{}
	if opt.Faults {
		plan = fault.DefaultPlan(uint64(seed))
	}
	return RunPlan(seed, plan, opt)
}

// RunPlan executes the scenario derived from seed under an explicit fault
// plan (the shrinker's entry point: same scenario, reduced plan).
func RunPlan(seed int64, plan fault.Plan, opt Options) *Outcome {
	rng := rand.New(rand.NewSource(seed))
	tiles := 4 + rng.Intn(5)*2 // 4..12
	nthreads := tiles / 2      // home core 2i, spare 2i+1
	cfg := machine.MSAOMU(tiles, 1+rng.Intn(2))
	if rng.Intn(3) == 0 {
		cfg = machine.WithoutHWSync(cfg)
	}
	if rng.Intn(4) == 0 {
		cfg = machine.WithBloomOMU(cfg, 2)
	}
	if rng.Intn(4) == 0 {
		cfg = machine.WithFixedPriority(cfg)
	}
	cfg.Fault = plan
	cfg.Invariants = true
	cfg.MSA.UnsafeNoOMUCheck = opt.BrokenOMU
	if opt.tmMode() {
		// The TM backend never issues MSA instructions; run it on the
		// software-only machine the rest of the TM evaluation uses.
		cfg.Name = "tm-chaos"
		cfg.CPU.Mode = cpu.ModeAlwaysFail
	}
	m := machine.New(cfg)
	arena := syncrt.NewArena(0x100000)
	lib := syncrt.HWLib()
	if opt.tmMode() {
		lib = syncrt.TMLib()
		lib.TMNoValidate = opt.BrokenTMValidation
	}
	if rng.Intn(3) == 0 {
		lib.Cond = syncrt.CondNoSpurious
	}

	nlocks := 1 + rng.Intn(6)
	locks := arena.MutexArray(nlocks)
	counters := arena.DataArray(nlocks)
	bar := arena.Barrier(nthreads)
	useBarrier := rng.Intn(2) == 0
	iters := 6 + rng.Intn(10)
	qnodes := make([]memory.Addr, nthreads)
	for i := range qnodes {
		qnodes[i] = arena.QNode()
	}
	plans := make([][]int, nthreads)
	for i := range plans {
		plans[i] = make([]int, iters)
		for k := range plans[i] {
			plans[i][k] = rng.Intn(nlocks)
		}
	}

	// Direct mutual-exclusion oracle: the simulation is single-threaded, so
	// Go-side holder bookkeeping observes every overlap instantly. It checks
	// the same property as the invariant checker through an entirely
	// different mechanism, so a checker bug cannot mask a protocol bug.
	holder := make([]int, nlocks)
	for i := range holder {
		holder[i] = -1
	}
	oracle := 0
	var threads []*cpu.Thread
	for i := 0; i < nthreads; i++ {
		i := i
		th := m.Complex.Spawn(i, func(e cpu.Env) {
			rt := lib.Bind(e, qnodes[i])
			for k := 0; k < iters; k++ {
				l := plans[i][k]
				if opt.tmMode() {
					// Transactional read-modify-write: the body may re-run
					// on abort, so it touches only transactional state (no
					// holder bookkeeping — overlapping attempts are legal).
					rt.Critical(locks[l], func() {
						v := rt.Load(counters[l])
						e.Compute(uint64(5 + (i*7+k*3)%20))
						rt.Store(counters[l], v+1)
					})
				} else {
					rt.Lock(locks[l])
					if holder[l] != -1 {
						oracle++
					}
					holder[l] = i
					v := e.Load(counters[l])
					e.Compute(uint64(5 + (i*7+k*3)%20))
					e.Store(counters[l], v+1)
					if holder[l] != i {
						oracle++
					}
					holder[l] = -1
					rt.Unlock(locks[l])
				}
				e.Compute(uint64(30 + (i*13+k*11)%60))
				if useBarrier {
					rt.Wait(bar)
				}
			}
		})
		threads = append(threads, th)
		m.Complex.Start(th, 2*i, 0)
	}

	// Random disturbance schedule: suspend a victim, resume it on its home
	// or spare core after a random delay (exercises the SUSPEND/ABORT and
	// migration paths under fault pressure). Disabled in TM mode: a
	// suspension parks a thread between an operation's architectural commit
	// and the transaction code that shadows it, which voids the TM
	// freshness checks' exactness argument (see fault/check.go) — the TM
	// campaigns rely on fault injection (jitter, delays, forced aborts) for
	// their schedule pressure instead.
	disturbances := rng.Intn(8)
	if opt.tmMode() {
		disturbances = 0
	}
	var schedule func(round int)
	schedule = func(round int) {
		if round >= disturbances {
			return
		}
		v := rng.Intn(nthreads)
		delay := sim.Time(500 + rng.Intn(4000))
		dst := 2*v + rng.Intn(2)
		m.Complex.Suspend(threads[v], func() {
			m.Engine.After(delay, func() {
				if !threads[v].Done() {
					m.Complex.Resume(threads[v], dst)
				}
				m.Engine.After(sim.Time(1000+rng.Intn(3000)), func() { schedule(round + 1) })
			})
		})
	}
	m.Engine.At(sim.Time(1000+rng.Intn(2000)), func() { schedule(0) })

	out := &Outcome{Seed: seed, Config: cfg.Name, Lib: lib.Desc()}
	end, err := m.Run(opt.EffectiveBudget())
	out.Cycles = uint64(end)
	out.Violations = m.Checker.Violations()
	if m.Injector != nil {
		out.Counts = m.Injector.Counts()
	}
	if err != nil {
		out.Err = err.Error()
		var le *machine.LivenessError
		if errors.As(err, &le) {
			out.Diag = le.Diag
			// The error string embeds the full diagnosis; keep Err short.
			out.Err = le.Reason
		}
		return out
	}
	// Completed: verify every planned acquisition landed exactly once.
	want := make([]uint64, nlocks)
	for i := range plans {
		for _, l := range plans[i] {
			want[l]++
		}
	}
	for l := 0; l < nlocks; l++ {
		if got := m.Store.Load(counters[l]); got != want[l] {
			out.LostUpdates++
		}
	}
	out.Oracle = oracle
	return out
}

// Campaign runs seeds [start, start+n) with up to parallel concurrent
// simulations and returns the outcomes in seed order. progress (may be nil)
// is called once per completed seed, serialized.
func Campaign(start, n int64, parallel int, opt Options, progress func(*Outcome)) []*Outcome {
	if parallel < 1 {
		parallel = 1
	}
	outs := make([]*Outcome, n)
	sem := make(chan struct{}, parallel)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := int64(0); i < n; i++ {
		i := i
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			o := RunSeed(start+i, opt)
			mu.Lock()
			outs[i] = o
			if progress != nil {
				progress(o)
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	return outs
}

// Shrink reduces a failing seed's fault plan to a minimal set of sites that
// still reproduces a failure: it greedily disables one injection site at a
// time and keeps the reduction whenever the scenario still fails. It returns
// the shrunken plan and the failing outcome under it. If the seed does not
// fail under the full plan, ok is false.
func Shrink(seed int64, opt Options) (plan fault.Plan, out *Outcome, ok bool) {
	plan = fault.DefaultPlan(uint64(seed))
	out = RunPlan(seed, plan, opt)
	if !out.Failed() {
		return plan, out, false
	}
	for _, site := range plan.Sites() {
		reduced := plan.Without(site)
		if !reduced.Enabled() {
			// Removing the last site disables injection entirely; only
			// accept that if the scenario fails even without faults.
			if o := RunPlan(seed, fault.Plan{}, opt); o.Failed() {
				return fault.Plan{}, o, true
			}
			continue
		}
		if o := RunPlan(seed, reduced, opt); o.Failed() {
			plan, out = reduced, o
		}
	}
	return plan, out, true
}
