// Pipeline: a dedup-style bounded buffer connecting producer and consumer
// stages through two condition variables (not-empty / not-full). The MSA
// serves COND_WAIT/COND_SIGNAL with direct notification and hands the
// associated mutex straight to the woken waiter (§4.3), replacing the
// software thundering herd.
package main

import (
	"fmt"
	"log"

	"misar"
)

const (
	tiles       = 8
	perProducer = 40
	capacity    = 6
)

func run(name string, cfg misar.Config, lib *misar.Lib) {
	m := misar.New(cfg)
	arena := misar.NewArena(0x100000)
	lock := arena.Mutex()
	notEmpty := arena.Cond()
	notFull := arena.Cond()
	depth := arena.Data(1)
	consumed := arena.Data(1)
	producers := tiles / 2
	total := uint64(producers * perProducer)
	qnodes := make([]misar.Addr, tiles)
	for i := range qnodes {
		qnodes[i] = arena.QNode()
	}

	m.SpawnAll(tiles, func(tid int, e misar.Env) {
		rt := lib.Bind(e, qnodes[tid])
		if tid < producers {
			for i := 0; i < perProducer; i++ {
				e.Compute(600) // produce a chunk
				rt.Lock(lock)
				for e.Load(depth) >= capacity {
					rt.CondWait(notFull, lock)
				}
				e.Store(depth, e.Load(depth)+1)
				rt.CondSignal(notEmpty)
				rt.Unlock(lock)
			}
			return
		}
		for {
			rt.Lock(lock)
			for e.Load(depth) == 0 && e.Load(consumed) < total {
				rt.CondWait(notEmpty, lock)
			}
			if e.Load(consumed) >= total {
				rt.CondBroadcast(notEmpty) // release the other consumers
				rt.Unlock(lock)
				return
			}
			e.Store(depth, e.Load(depth)-1)
			e.Store(consumed, e.Load(consumed)+1)
			finished := e.Load(consumed) >= total
			rt.CondSignal(notFull)
			if finished {
				rt.CondBroadcast(notEmpty)
			}
			rt.Unlock(lock)
			e.Compute(700) // consume the chunk
		}
	})
	cycles, err := m.Run(misar.RunDeadline)
	if err != nil {
		log.Fatal(err)
	}
	if m.Store.Load(consumed) != total {
		log.Fatalf("%s: consumed %d of %d", name, m.Store.Load(consumed), total)
	}
	s := m.MSAStats()
	fmt.Printf("%-12s %9d cycles  condHW=%d condSW=%d\n", name, cycles, s.CondHW, s.CondSW)
}

func main() {
	fmt.Printf("%d producers -> %d consumers through a %d-slot buffer\n\n",
		tiles/2, tiles-tiles/2, capacity)
	run("pthread", misar.MSA0(tiles), misar.PthreadLib())
	run("msa/omu-2", misar.MSAOMU(tiles, 2), misar.HWLib())
	run("ideal", misar.Ideal(tiles), misar.HWLib())
}
