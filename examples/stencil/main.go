// Stencil: an ocean-style iterative solver — every thread updates its strip
// of a grid, then the whole machine meets at a barrier, twice per sweep.
// Compares the software barrier chain against the MSA's single-message
// arrival tracking and direct-notification release.
package main

import (
	"fmt"
	"log"

	"misar"
)

const (
	tiles  = 16
	sweeps = 50
)

func run(name string, cfg misar.Config, lib *misar.Lib) misar.Time {
	m := misar.New(cfg)
	arena := misar.NewArena(0x100000)
	bar := arena.Barrier(tiles)
	grid := arena.DataArray(tiles)
	qnodes := make([]misar.Addr, tiles)
	for i := range qnodes {
		qnodes[i] = arena.QNode()
	}
	m.SpawnAll(tiles, func(tid int, e misar.Env) {
		rt := lib.Bind(e, qnodes[tid])
		for s := 0; s < sweeps; s++ {
			// Red sweep over this thread's strip.
			e.Compute(uint64(1200 + tid*7%60))
			e.Store(grid[tid], uint64(s))
			rt.Wait(bar)
			// Black sweep reads the neighbour's boundary row.
			if e.Load(grid[(tid+1)%tiles]) < uint64(s) {
				log.Fatalf("barrier violated at sweep %d", s)
			}
			e.Compute(800)
			rt.Wait(bar)
		}
	})
	cycles, err := m.Run(misar.RunDeadline)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-20s %9d cycles\n", name, cycles)
	return cycles
}

func main() {
	fmt.Printf("%d sweeps x 2 barriers on %d cores\n\n", sweeps, tiles)
	base := run("pthread barrier", misar.MSA0(tiles), misar.PthreadLib())
	tour := run("tournament barrier", misar.MSA0(tiles), misar.MCSTourLib())
	hw := run("MSA/OMU-2", misar.MSAOMU(tiles, 2), misar.HWLib())
	ideal := run("ideal", misar.Ideal(tiles), misar.HWLib())
	fmt.Printf("\nspeedup vs pthread: tournament %.2fx, MSA %.2fx, ideal %.2fx\n",
		float64(base)/float64(tour), float64(base)/float64(hw), float64(base)/float64(ideal))
}
