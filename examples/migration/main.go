// Migration: exercises the MSA's thread-scheduling paths (§4.1.2/§4.2.2):
// an OS shim suspends a lock owner mid-critical-section and resumes it on a
// different core. The owner's UNLOCK then arrives from a core whose HWQueue
// bit is not set, so the MSA replies SUCCESS, ABORTs every waiter to the
// software fallback, charges the OMU for each, and tears the entry down —
// and the program still computes the right answer.
package main

import (
	"fmt"
	"log"

	"misar"
)

func main() {
	const tiles = 8
	const workers = 6 // cores 6 and 7 stay free as migration targets

	m := misar.New(misar.MSAOMU(tiles, 2))
	arena := misar.NewArena(0x100000)
	lock := arena.Mutex()
	counter := arena.Data(1)
	lib := misar.HWLib()
	qnodes := make([]misar.Addr, workers)
	for i := range qnodes {
		qnodes[i] = arena.QNode()
	}

	var threads []*misar.Thread
	for i := 0; i < workers; i++ {
		i := i
		th := m.Complex.Spawn(i, func(e misar.Env) {
			rt := lib.Bind(e, qnodes[i])
			for k := 0; k < 10; k++ {
				rt.Lock(lock)
				if i == 0 && k == 3 {
					e.Compute(20_000) // hold long enough to be migrated
				}
				e.Store(counter, e.Load(counter)+1)
				rt.Unlock(lock)
				e.Compute(uint64(300 + 37*i))
			}
		})
		threads = append(threads, th)
		m.Complex.Start(th, i, 0)
	}

	// The "OS": at cycle 5000, preempt thread 0 (which is inside its long
	// critical section) and resume it on core 7.
	m.Engine.At(5_000, func() {
		fmt.Println("os: suspending thread 0")
		m.Complex.Suspend(threads[0], func() {
			fmt.Printf("os: thread 0 parked at cycle %d, resuming on core 7\n", m.Engine.Now())
			m.Engine.After(1_000, func() { m.Complex.Resume(threads[0], 7) })
		})
	})

	cycles, err := m.Run(misar.RunDeadline)
	if err != nil {
		log.Fatal(err)
	}
	want := uint64(workers * 10)
	fmt.Printf("finished in %d cycles; counter = %d (want %d)\n",
		cycles, m.Store.Load(counter), want)
	if m.Store.Load(counter) != want {
		log.Fatal("mutual exclusion violated")
	}
	s := m.MSAStats()
	fmt.Printf("msa aborts issued: %d (waiters sent to the software fallback)\n", s.Aborts)
	fmt.Printf("migrations: core 7 adopted %d thread(s)\n", m.Cores[7].Stats().Migrations)
	fmt.Printf("hardware coverage despite the teardown: %.1f%%\n", m.Coverage()*100)
}
