// Taskqueue: a radiosity-style work-stealing task system with many more
// locks than the accelerator has entries, run under four machine
// configurations. This is the scenario the OMU exists for: the active lock
// set churns, entries follow it, and everything that overflows runs safely
// in the software fallback.
package main

import (
	"fmt"
	"log"

	"misar"
)

const (
	tiles          = 16
	queuesPerCore  = 4
	tasksPerThread = 80
)

func run(name string, cfg misar.Config, lib *misar.Lib) {
	m := misar.New(cfg)
	arena := misar.NewArena(0x100000)
	locks := arena.MutexArray(tiles * queuesPerCore)
	depths := arena.DataArray(len(locks))
	done := arena.Data(1)
	qnodes := make([]misar.Addr, tiles)
	for i := range qnodes {
		qnodes[i] = arena.QNode()
	}

	m.SpawnAll(tiles, func(tid int, e misar.Env) {
		rt := lib.Bind(e, qnodes[tid])
		seed := uint64(tid)*2654435761 + 12345
		next := func(n int) int {
			seed ^= seed << 13
			seed ^= seed >> 7
			seed ^= seed << 17
			return int(seed % uint64(n))
		}
		for i := 0; i < tasksPerThread; i++ {
			// Pop from a (usually stolen) queue.
			q := next(len(locks))
			rt.Lock(locks[q])
			e.Store(depths[q], e.Load(depths[q])+1)
			e.Compute(40)
			rt.Unlock(locks[q])
			// Do the task.
			e.Compute(uint64(150 + next(100)))
			// Push a result to the home queue.
			home := tid * queuesPerCore
			rt.Lock(locks[home])
			e.Store(depths[home], e.Load(depths[home])+1)
			rt.Unlock(locks[home])
		}
		e.FetchAdd(done, 1)
	})
	cycles, err := m.Run(misar.RunDeadline)
	if err != nil {
		log.Fatal(err)
	}
	if m.Store.Load(done) != tiles {
		log.Fatalf("%s: only %d threads finished", name, m.Store.Load(done))
	}
	s := m.MSAStats()
	fmt.Printf("%-12s %9d cycles  coverage %5.1f%%  entries alloc/reclaim %d/%d\n",
		name, cycles, m.Coverage()*100, s.Allocs, s.Reclaims)
}

func main() {
	fmt.Printf("%d queues over %d tiles with 2 MSA entries each\n\n",
		tiles*queuesPerCore, tiles)
	base := misar.MSA0(tiles)
	run("pthread", base, misar.PthreadLib())
	run("mcs", base, misar.MCSTourLib())
	run("msa/omu-2", misar.MSAOMU(tiles, 2), misar.HWLib())
	run("msa-inf", misar.MSAInf(tiles), misar.HWLib())
}
