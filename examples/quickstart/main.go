// Quickstart: build a 16-core machine with the MSA/OMU accelerator, run 16
// threads incrementing a shared counter under one lock, and print how much
// of the synchronization the hardware served.
package main

import (
	"fmt"
	"log"

	"misar"
)

func main() {
	m := misar.New(misar.MSAOMU(16, 2))

	arena := misar.NewArena(0x100000)
	lock := arena.Mutex()
	counter := arena.Data(1)
	lib := misar.HWLib() // Algorithms 1-3: hardware first, pthread fallback
	qnodes := make([]misar.Addr, 16)
	for i := range qnodes {
		qnodes[i] = arena.QNode()
	}

	m.SpawnAll(16, func(tid int, e misar.Env) {
		rt := lib.Bind(e, qnodes[tid])
		for i := 0; i < 100; i++ {
			rt.Lock(lock)
			e.Store(counter, e.Load(counter)+1) // critical section
			rt.Unlock(lock)
			e.Compute(200) // private work
		}
	})

	cycles, err := m.Run(misar.RunDeadline)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("finished in %d cycles\n", cycles)
	fmt.Printf("counter = %d (want 1600)\n", m.Store.Load(counter))
	fmt.Printf("hardware handled %.1f%% of synchronization operations\n", m.Coverage()*100)
	s := m.MSAStats()
	fmt.Printf("lock grants: %d in hardware (%d silent re-acquires), %d software fallbacks\n",
		s.LockHW+s.SilentLocks, s.SilentLocks, s.LockSW)
}
