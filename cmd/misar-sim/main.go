// Command misar-sim runs one benchmark on one machine configuration and
// prints detailed statistics: cycles, speedup versus the software baseline,
// MSA/OMU activity, coverage, and network/cache counters.
//
// Usage:
//
//	misar-sim -app streamcluster -tiles 64 -config msaomu2
//	misar-sim -app fluidanimate -tiles 16 -config msaomu2-noopt -v
//	misar-sim -app streamcluster -tiles 64 -remote localhost:8091
//	misar-sim -list
//
// Configs: pthread, spinlock, mcs-tour, msa0, msaomu1, msaomu2, msaomu4,
// msaomu2-noomu, msaomu2-noopt, msaomu2-lockonly, msaomu2-barrieronly,
// msainf, ideal, tm (software transactional memory, internal/tm).
//
// With -remote the simulation is submitted to a misar-served instance
// instead of running in-process: identical requests are deduplicated
// server-side and warm results come back instantly from its persistent
// store.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"misar/internal/cpu"
	"misar/internal/fault"
	"misar/internal/harness"
	"misar/internal/machine"
	"misar/internal/obs"
	"misar/internal/prof"
	"misar/internal/service"
	"misar/internal/service/client"
	"misar/internal/syncrt"
	"misar/internal/trace"
	"misar/internal/workload"
)

func main() {
	appName := flag.String("app", "streamcluster", "benchmark name (-list to enumerate)")
	tiles := flag.Int("tiles", 16, "core count (<= 64)")
	config := flag.String("config", "msaomu2", "machine configuration")
	configFile := flag.String("config-file", "", "load the machine configuration from a JSON file (overrides -config/-tiles)")
	saveConfig := flag.String("save-config", "", "write the resolved machine configuration to a JSON file and exit")
	list := flag.Bool("list", false, "list benchmarks and exit")
	verbose := flag.Bool("v", false, "print per-component statistics")
	report := flag.String("report", "", "write a JSON metrics report to this file (enables metering)")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON file (open in ui.perfetto.dev)")
	faultSeed := flag.Uint64("fault-seed", 0, "enable the fault injector with the default plan for this seed")
	invariants := flag.Bool("invariants", false, "arm the runtime safety-invariant checker")
	remote := flag.String("remote", "", "submit to a misar-served instance at this address instead of simulating locally")
	flag.Parse()
	defer prof.Start()()

	if *list {
		for _, a := range workload.Suite() {
			marker := " "
			if a.SyncSensitive {
				marker = "*"
			}
			fmt.Printf("%s %s\n", marker, a.Name)
		}
		fmt.Println("(* = synchronization sensitive, shown individually in Fig. 6)")
		return
	}

	if *remote != "" {
		for name, set := range map[string]bool{
			"-config-file": *configFile != "",
			"-save-config": *saveConfig != "",
			"-v":           *verbose,
		} {
			if set {
				fmt.Fprintf(os.Stderr, "misar-sim: %s is local-only and cannot be combined with -remote\n", name)
				os.Exit(2)
			}
		}
		os.Exit(runRemote(*remote, *appName, *config, *tiles, *faultSeed, *invariants, *report, *traceOut))
	}

	app, ok := workload.ByName(*appName)
	if !ok {
		fmt.Fprintf(os.Stderr, "misar-sim: unknown app %q (-list to enumerate)\n", *appName)
		os.Exit(2)
	}
	cfg, libf, err := harness.Variant(*config, *tiles)
	if err != nil {
		fmt.Fprintf(os.Stderr, "misar-sim: %v\n", err)
		os.Exit(2)
	}
	if *configFile != "" {
		cfg, err = machine.LoadConfig(*configFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "misar-sim:", err)
			os.Exit(2)
		}
	}
	if *saveConfig != "" {
		if err := machine.SaveConfig(*saveConfig, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "misar-sim:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *saveConfig)
		return
	}

	// Baseline for the speedup denominator.
	baseCfg, baseLib, err := harness.Variant("pthread", cfg.Tiles)
	if err != nil {
		fmt.Fprintln(os.Stderr, "misar-sim: baseline:", err)
		os.Exit(1)
	}
	_, baseCycles, err := workload.Run(app, baseCfg, baseLib())
	if err != nil {
		fmt.Fprintln(os.Stderr, "misar-sim: baseline:", err)
		os.Exit(1)
	}

	if *report != "" {
		cfg.Metrics = true
	}
	if *faultSeed != 0 {
		// Fault campaigns always arm the checker: injected faults are only
		// useful if something is watching the invariants they stress.
		cfg.Fault = fault.DefaultPlan(*faultSeed)
		cfg.Invariants = true
	}
	if *invariants {
		cfg.Invariants = true
	}
	lib := libf()

	start := time.Now()
	m := machine.New(cfg)
	var buf *trace.Buffer
	if *traceOut != "" {
		buf = trace.NewBuffer(1_000_000)
		m.AttachTracer(buf)
	}
	arena := syncrt.NewArena(0x1000000)
	m.SpawnAll(cfg.Tiles, app.Build(arena, cfg.Tiles, lib))
	cycles, err := m.Run(workload.RunDeadline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "misar-sim:", err)
		os.Exit(1)
	}
	wall := time.Since(start)

	fmt.Printf("app            %s\n", app.Name)
	fmt.Printf("machine        %s\n", m.Cfg.Name)
	fmt.Printf("cycles         %d\n", cycles)
	fmt.Printf("speedup        %.2fx vs pthread (%d cycles)\n",
		float64(baseCycles)/float64(cycles), baseCycles)
	fmt.Printf("sync ops       %d issued by cores\n", m.SyncOps())
	fmt.Printf("coverage       %.1f%% handled in hardware\n", m.Coverage()*100)
	s := m.MSAStats()
	fmt.Printf("msa            lockHW=%d lockSW=%d barrierHW=%d barrierSW=%d condHW=%d condSW=%d silent=%d\n",
		s.LockHW, s.LockSW, s.BarrierHW, s.BarrierSW, s.CondHW, s.CondSW, s.SilentLocks)
	fmt.Printf("entries        allocs=%d deallocs=%d reclaims=%d grants=%d revokes=%d aborts=%d\n",
		s.Allocs, s.Deallocs, s.Reclaims, s.Grants, s.Revokes, s.Aborts)
	fmt.Printf("omu            steers=%d capacitySteers=%d\n", s.OMUSteers, s.CapacitySteers)
	if m.Injector != nil {
		fmt.Printf("faults         %s\n", m.Injector.Counts().String())
	}
	if cfg.Invariants {
		fmt.Printf("invariants     %d violation(s)\n", len(m.Checker.Violations()))
	}
	for _, lk := range []struct {
		name string
		kind cpu.LatencyKind
	}{
		{"lock", cpu.LatLock}, {"unlock", cpu.LatUnlock},
		{"barrier", cpu.LatBarrier}, {"cond", cpu.LatCond},
	} {
		h := m.Latency(lk.kind)
		if h.Count() == 0 {
			continue
		}
		fmt.Printf("lat %-10s n=%-7d mean=%-8.1f p50<=%-8d p95<=%-8d max=%d\n",
			lk.name, h.Count(), h.Mean(), h.Percentile(50), h.Percentile(95), h.Max())
	}
	ns := m.Net.Stats()
	fmt.Printf("noc            msgs=%d flits=%d avgLat=%.1f maxLat=%d\n",
		ns.Messages, ns.Flits, ns.AvgLatency(), ns.MaxLatency)
	fmt.Printf("wall           %v (%.0f sim cycles/s)\n",
		wall.Round(time.Millisecond), float64(cycles)/wall.Seconds())

	if *report != "" {
		rep := m.MetricsReport("app", app.Name, lib.Desc())
		if err := rep.WriteJSONFile(*report); err != nil {
			fmt.Fprintln(os.Stderr, "misar-sim:", err)
			os.Exit(1)
		}
		fmt.Printf("report         wrote %s (%d counters)\n", *report, len(rep.Metrics.Counters))
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "misar-sim:", err)
			os.Exit(1)
		}
		events := buf.Events()
		if err := trace.WriteChrome(f, events); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "misar-sim:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "misar-sim:", err)
			os.Exit(1)
		}
		fmt.Printf("trace          wrote %s (%d events, %d dropped)\n", *traceOut, len(events), buf.Dropped)
	}

	if *verbose {
		fmt.Println("\nper-tile:")
		for i := range m.Cores {
			cs := m.Cores[i].Stats()
			ls := m.L1s[i].Stats()
			ds := m.Dirs[i].Stats()
			os := m.Slices[i].OMUStats()
			fmt.Printf("  tile %2d: syncStall=%-8d silent=%-5d l1hit=%d/%d dirReqs=%d omuIncs=%d\n",
				i, cs.SyncStallCycles, cs.SilentLocks,
				ls.Hits, ls.Hits+ls.Misses, ds.GetS+ds.GetX, os.Incs)
		}
	}
}

// runRemote submits the experiment (and its pthread baseline, for the
// speedup line) to a misar-served instance and prints the result. Returns
// the process exit code.
//
// The client mints the end-to-end trace ID: the server adopts it, so with
// -trace-out the client-side submit span and every server-side span (queue
// wait, store lookup, sim phases) land in ONE Chrome trace file.
func runRemote(addr, appName, config string, tiles int, faultSeed uint64, invariants bool, report, traceOut string) int {
	c := client.New(addr)
	traceID := obs.NewTraceID()
	spans := obs.NewRecorder(0)
	ctx := obs.WithRecorder(obs.WithTrace(context.Background(), traceID), spans)

	req := service.JobRequest{
		App:        appName,
		Config:     config,
		Tiles:      tiles,
		FaultSeed:  faultSeed,
		Invariants: invariants,
		Metrics:    report != "",
	}

	start := time.Now()
	onEvent := func(ev service.JobEvent) {
		switch ev.Event {
		case "accepted":
			fmt.Printf("remote         %s accepted %s (%s)\n", addr, ev.Job, ev.Label)
		case "running":
			fmt.Printf("remote         %s running, %.1fs elapsed\n", ev.Job, float64(ev.ElapsedMS)/1000)
		}
	}

	// The baseline job rides along so speedup is computable; the server
	// deduplicates it against any prior identical request, so a warm
	// baseline costs one store read.
	type outcome struct {
		ev  *service.JobEvent
		err error
	}
	basec := make(chan outcome, 1)
	if config == "pthread" {
		basec <- outcome{}
	} else {
		baseReq := service.JobRequest{App: appName, Config: "pthread", Tiles: tiles}
		go func() {
			ev, err := c.Submit(ctx, baseReq, nil)
			basec <- outcome{ev, err}
		}()
	}

	final, err := c.Submit(ctx, req, onEvent)
	if err != nil {
		fmt.Fprintln(os.Stderr, "misar-sim: remote:", err)
		return 1
	}
	base := <-basec
	wall := time.Since(start)

	res := final.Result
	fmt.Printf("app            %s\n", appName)
	fmt.Printf("machine        %s\n", strings.TrimPrefix(final.Label, appName+" on "))
	fmt.Printf("cycles         %d\n", res.Cycles)
	if base.err != nil {
		fmt.Fprintln(os.Stderr, "misar-sim: remote baseline:", base.err)
	} else if base.ev != nil && base.ev.Result != nil && res.Cycles > 0 {
		fmt.Printf("speedup        %.2fx vs pthread (%d cycles)\n",
			float64(base.ev.Result.Cycles)/float64(res.Cycles), base.ev.Result.Cycles)
	}
	fmt.Printf("coverage       %.1f%% handled in hardware\n", res.Coverage*100)
	source := "simulated by server"
	if final.FromStore {
		source = "replayed from server store"
	}
	fmt.Printf("source         %s (job %.1fs, round-trip %v)\n",
		source, float64(final.ElapsedMS)/1000, wall.Round(time.Millisecond))
	if final.Trace != "" {
		fmt.Printf("trace id       %s\n", final.Trace)
	}

	if traceOut != "" {
		merged := append([]trace.Span{}, final.Spans...)
		merged = append(merged, spans.SpansFor(traceID)...)
		if len(merged) == 0 {
			fmt.Fprintln(os.Stderr, "misar-sim: remote returned no spans for the trace file")
			return 1
		}
		f, err := os.Create(traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "misar-sim:", err)
			return 1
		}
		if err := trace.WriteChromeSpans(f, merged); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "misar-sim:", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "misar-sim:", err)
			return 1
		}
		fmt.Printf("trace          wrote %s (%d spans, open in ui.perfetto.dev)\n", traceOut, len(merged))
	}

	if report != "" {
		if res.Report == nil {
			fmt.Fprintln(os.Stderr, "misar-sim: remote result carries no metrics report")
			return 1
		}
		if err := res.Report.WriteJSONFile(report); err != nil {
			fmt.Fprintln(os.Stderr, "misar-sim:", err)
			return 1
		}
		fmt.Printf("report         wrote %s (%d counters)\n", report, len(res.Report.Metrics.Counters))
	}
	return 0
}
