// Command misar-served runs the simulation job server: an HTTP/JSON service
// that admits simulation requests through a bounded queue, deduplicates
// identical in-flight jobs, serves warm results from a content-addressed
// persistent store, and streams progress as NDJSON.
//
// Usage:
//
//	misar-served -addr :8091 -store misar-store -workers 8
//	curl -s localhost:8091/healthz
//	curl -s -X POST localhost:8091/v1/jobs \
//	    -d '{"app":"streamcluster","config":"msaomu2","tiles":16}'
//
// Observability (DESIGN.md §13): requests are traced end to end via the
// X-Misar-Trace header (GET /v1/jobs/{id}/trace serves the spans as a
// Chrome trace), finished jobs expose their machine's flight-recorder
// ring at GET /v1/jobs/{id}/flight, GET /v1/timeseries samples queue
// depth / in-flight / store hit-rate, structured JSON logs go to stderr
// (-log), and /debug/pprof/ serves live profiles and runtime traces.
//
// On SIGINT/SIGTERM the server drains: admission stops (503), accepted jobs
// finish and persist, then the process exits 0. A second signal — or an
// expired -drain-timeout — hard-cancels the remaining jobs and exits 1.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"misar/internal/service"
)

func main() {
	addr := flag.String("addr", ":8091", "listen address")
	workers := flag.Int("workers", 0, "simulation worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "max admitted unfinished jobs (backpressure beyond)")
	storeDir := flag.String("store", "misar-store", "persistent result store directory (empty = memory only)")
	heartbeat := flag.Duration("heartbeat", 500*time.Millisecond, "NDJSON progress heartbeat cadence")
	jobTimeout := flag.Duration("job-timeout", 0, "default per-job wall-clock cap (0 = unbounded)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Minute, "graceful drain deadline on SIGTERM")
	logReq := flag.Bool("log", true, "structured request/job logging (JSON lines on stderr, tagged with trace IDs)")
	sampleInterval := flag.Duration("sample-interval", 5*time.Second, "live-telemetry sampling cadence (/v1/timeseries)")
	flag.Parse()

	var logger *slog.Logger
	if *logReq {
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	s, err := service.New(service.Options{
		Workers:        *workers,
		QueueLimit:     *queue,
		StoreDir:       *storeDir,
		Heartbeat:      *heartbeat,
		DefaultTimeout: *jobTimeout,
		Logger:         logger,
		SampleInterval: *sampleInterval,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "misar-served:", err)
		os.Exit(1)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	storeDesc := *storeDir
	if storeDesc == "" {
		storeDesc = "(memory only)"
	}
	fmt.Printf("misar-served: listening on %s (queue %d, store %s)\n", *addr, *queue, storeDesc)

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "misar-served:", err)
		os.Exit(1)
	case got := <-sig:
		fmt.Printf("misar-served: %v, draining (deadline %v; signal again to abort)\n", got, *drainTimeout)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	go func() {
		<-sig // second signal: abandon the drain
		cancel()
	}()
	drainErr := s.Drain(drainCtx)
	if drainErr != nil {
		fmt.Fprintln(os.Stderr, "misar-served:", drainErr)
		s.Close() // hard-cancel whatever is left
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "misar-served: shutdown:", err)
	}
	if drainErr != nil {
		os.Exit(1)
	}
	fmt.Println("misar-served: drained cleanly")
}
