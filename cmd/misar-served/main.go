// Command misar-served runs the simulation job server: an HTTP/JSON service
// that admits simulation requests through a bounded queue, deduplicates
// identical in-flight jobs, serves warm results from a content-addressed
// persistent store, and streams progress as NDJSON.
//
// Usage:
//
//	misar-served -addr :8091 -store misar-store -workers 8
//	curl -s localhost:8091/healthz
//	curl -s -X POST localhost:8091/v1/jobs \
//	    -d '{"app":"streamcluster","config":"msaomu2","tiles":16}'
//
// Observability (DESIGN.md §13): requests are traced end to end via the
// X-Misar-Trace header (GET /v1/jobs/{id}/trace serves the spans as a
// Chrome trace), finished jobs expose their machine's flight-recorder
// ring at GET /v1/jobs/{id}/flight, GET /v1/timeseries samples queue
// depth / in-flight / store hit-rate, structured JSON logs go to stderr
// (-log), and /debug/pprof/ serves live profiles and runtime traces.
//
// On SIGINT/SIGTERM the server drains: admission stops (503), accepted jobs
// finish and persist, then the process exits 0. A second signal — or an
// expired -drain-timeout — hard-cancels the remaining jobs and exits 1.
//
// Fleet mode (DESIGN.md §15): pass -peers with the other nodes' base URLs
// and -self with this node's advertised URL to join N servers into one
// resilient service — consistent-hash job routing, peer store fetch, result
// replication, and health-checked failover:
//
//	misar-served -addr :8091 -self http://127.0.0.1:8091 \
//	    -peers http://127.0.0.1:8092,http://127.0.0.1:8093
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"misar/internal/fleet"
	"misar/internal/harness"
	"misar/internal/service"
	"misar/internal/store"
)

func main() {
	addr := flag.String("addr", ":8091", "listen address")
	workers := flag.Int("workers", 0, "simulation worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "max admitted unfinished jobs (backpressure beyond)")
	storeDir := flag.String("store", "misar-store", "persistent result store directory (empty = memory only)")
	heartbeat := flag.Duration("heartbeat", 500*time.Millisecond, "NDJSON progress heartbeat cadence")
	jobTimeout := flag.Duration("job-timeout", 0, "default per-job wall-clock cap (0 = unbounded)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Minute, "graceful drain deadline on SIGTERM")
	logReq := flag.Bool("log", true, "structured request/job logging (JSON lines on stderr, tagged with trace IDs)")
	sampleInterval := flag.Duration("sample-interval", 5*time.Second, "live-telemetry sampling cadence (/v1/timeseries)")
	peers := flag.String("peers", "", "comma-separated peer base URLs; enables fleet mode")
	self := flag.String("self", "", "this node's advertised base URL (fleet mode; e.g. http://127.0.0.1:8091)")
	replicas := flag.Int("replicas", 2, "fleet replication factor, owner included")
	probeInterval := flag.Duration("probe-interval", time.Second, "fleet peer health-probe cadence")
	flag.Parse()

	var logger *slog.Logger
	if *logReq {
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}

	// Fleet membership is built before the service so the service's store
	// can be wrapped with peer fetch/replication at construction time.
	var mem *fleet.Membership
	var ps *fleet.PeerStore
	var wrapStore func(*store.Store) harness.ResultStore
	if *peers != "" {
		if *self == "" {
			fmt.Fprintln(os.Stderr, "misar-served: -peers requires -self (this node's advertised URL)")
			os.Exit(1)
		}
		if *storeDir == "" {
			fmt.Fprintln(os.Stderr, "misar-served: fleet mode requires a persistent store (-store)")
			os.Exit(1)
		}
		var peerList []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
		mem = fleet.NewMembership(*self, peerList, fleet.MembershipOptions{
			ProbeInterval: *probeInterval,
			Logger:        logger,
		})
		wrapStore = func(st *store.Store) harness.ResultStore {
			ps = fleet.NewPeerStore(st, mem, fleet.PeerStoreOptions{
				Replicas: *replicas,
				Logger:   logger,
			})
			return ps
		}
	}

	s, err := service.New(service.Options{
		Workers:        *workers,
		QueueLimit:     *queue,
		StoreDir:       *storeDir,
		Heartbeat:      *heartbeat,
		DefaultTimeout: *jobTimeout,
		Logger:         logger,
		SampleInterval: *sampleInterval,
		WrapStore:      wrapStore,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "misar-served:", err)
		os.Exit(1)
	}

	handler := s.Handler()
	if mem != nil {
		node := fleet.NewNode(s, mem, ps, fleet.NodeOptions{Logger: logger})
		handler = node.Handler()
		mem.Start()
		defer mem.Stop()
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	storeDesc := *storeDir
	if storeDesc == "" {
		storeDesc = "(memory only)"
	}
	fmt.Printf("misar-served: listening on %s (queue %d, store %s)\n", *addr, *queue, storeDesc)
	if mem != nil {
		fmt.Printf("misar-served: fleet mode, self %s, %d peer(s)\n", mem.Self(), len(mem.AlivePeers()))
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "misar-served:", err)
		os.Exit(1)
	case got := <-sig:
		fmt.Printf("misar-served: %v, draining (deadline %v; signal again to abort)\n", got, *drainTimeout)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	go func() {
		<-sig // second signal: abandon the drain
		cancel()
	}()
	drainErr := s.Drain(drainCtx)
	if drainErr != nil {
		fmt.Fprintln(os.Stderr, "misar-served:", drainErr)
		s.Close() // hard-cancel whatever is left
	}
	if ps != nil {
		ps.Wait() // let in-flight result replications land on peers
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "misar-served: shutdown:", err)
	}
	if drainErr != nil {
		os.Exit(1)
	}
	fmt.Println("misar-served: drained cleanly")
}
