package main

import (
	"strings"
	"testing"

	"misar/internal/chaos"
	"misar/internal/fault"
)

// fabricated outcomes for the exit-code policy tests.
func clean(seed int64) *chaos.Outcome {
	return &chaos.Outcome{Seed: seed}
}

func TestExitCodePolicy(t *testing.T) {
	cases := []struct {
		name   string
		outs   []*chaos.Outcome
		broken bool
		want   int
	}{
		{"all clean", []*chaos.Outcome{clean(0), clean(1)}, false, 0},
		{"run error", []*chaos.Outcome{clean(0), {Seed: 1, Err: "liveness: no progress"}}, false, 1},
		// The CI-gate case: the run COMPLETED (no error) but the checker
		// recorded invariant violations. These must fail the campaign.
		{"violations only", []*chaos.Outcome{
			{Seed: 0, Violations: []fault.Violation{{}}},
		}, false, 1},
		{"oracle overlap only", []*chaos.Outcome{{Seed: 0, Oracle: 2}}, false, 1},
		{"lost update only", []*chaos.Outcome{{Seed: 0, LostUpdates: 1}}, false, 1},
		// -broken inverts: failures are the expected outcome.
		{"broken with detections", []*chaos.Outcome{{Seed: 0, Err: "boom"}}, true, 0},
		{"broken detects nothing", []*chaos.Outcome{clean(0), clean(1)}, true, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := buildReport(0, int64(len(tc.outs)), chaos.Options{}, tc.outs)
			code, msg := exitCode(rep, tc.broken)
			if code != tc.want {
				t.Errorf("exit code %d (%q), want %d", code, msg, tc.want)
			}
			if code != 0 && msg == "" {
				t.Error("nonzero exit without a diagnostic message")
			}
		})
	}
}

func TestBuildReportAggregates(t *testing.T) {
	outs := []*chaos.Outcome{
		clean(0),
		{Seed: 1, Err: "x"},
		{Seed: 2, Violations: []fault.Violation{{}, {}}},
	}
	rep := buildReport(0, 3, chaos.Options{Faults: true}, outs)
	if rep.Failed != 2 {
		t.Errorf("Failed = %d, want 2", rep.Failed)
	}
	if rep.Schema != "misar-chaos/v1" || !rep.Faults || rep.Seeds != 3 {
		t.Errorf("report header malformed: %+v", rep)
	}
	if rep.Budget == 0 {
		t.Error("report did not resolve the effective budget")
	}
}

// TestSmallCampaignClean runs a real (tiny, unfaulted, unbroken) campaign
// end to end and requires a zero exit: the repository's own machine must
// not trip its own safety net.
func TestSmallCampaignClean(t *testing.T) {
	opt := chaos.Options{Faults: false}
	outs := chaos.Campaign(0, 2, 2, opt, nil)
	rep := buildReport(0, 2, opt, outs)
	code, msg := exitCode(rep, false)
	if code != 0 {
		for _, o := range outs {
			if o.Failed() {
				t.Logf("seed %d: err=%q violations=%d", o.Seed, o.Err, len(o.Violations))
			}
		}
		t.Fatalf("clean campaign exited %d: %s", code, msg)
	}
	if !strings.HasPrefix(rep.Schema, "misar-chaos/") {
		t.Errorf("schema %q", rep.Schema)
	}
}
