// Command misar-chaos drives seeded fault-injection campaigns against the
// full machine model and emits a machine-readable CHAOS.json. Every seed
// deterministically derives a scenario (machine shape, lock/barrier mix,
// suspend/migrate disturbances) and a fault plan (forced OMU steers, capacity
// steals, entry evictions, ack delays, NoC jitter, coherence delays); each
// run carries the safety-invariant checker and a liveness watchdog, so a bad
// interleaving surfaces as a structured violation or wait-for diagnosis.
//
// Usage:
//
//	misar-chaos                          # 200 faulted seeds, report to stdout summary + CHAOS.json
//	misar-chaos -seeds 1000 -parallel 16
//	misar-chaos -broken                  # detection selftest: runs with the OMU check disabled
//	misar-chaos -tm                      # same scenarios on the TM backend (internal/tm)
//	misar-chaos -tm -broken-tm           # TM detection selftest: validation skipped
//	misar-chaos -shrink 42               # minimize the fault plan of failing seed 42
//
// Exit status is nonzero when any seed fails — except under -broken or
// -broken-tm, where failures are the expected outcome and the exit status
// flips: it is an error if NOTHING is detected.
//
// CI runs a short campaign as a smoke job and uploads the JSON artifact; see
// .github/workflows/ci.yml.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"misar/internal/chaos"
	"misar/internal/fault"
	"misar/internal/sim"
)

type report struct {
	Schema      string           `json:"schema"`
	GoVersion   string           `json:"go_version"`
	Start       int64            `json:"start_seed"`
	Seeds       int64            `json:"seeds"`
	Faults      bool             `json:"faults"`
	BrokenOMU   bool             `json:"broken_omu"`
	TM          bool             `json:"tm,omitempty"`
	BrokenTM    bool             `json:"broken_tm_validation,omitempty"`
	Budget      uint64           `json:"budget_cycles"`
	Failed      int              `json:"failed"`
	FaultsFired uint64           `json:"faults_fired"`
	Outcomes    []*chaos.Outcome `json:"outcomes"`
	WallSeconds float64          `json:"wall_seconds"`
	GeneratedAt time.Time        `json:"generated_at"`
}

func main() {
	var (
		seeds    = flag.Int64("seeds", 200, "number of seeds to run")
		start    = flag.Int64("start", 0, "first seed")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrent simulations")
		budget   = flag.Uint64("budget", 0, "per-run cycle budget (0 = package default)")
		noFaults = flag.Bool("no-faults", false, "disable the fault injector (pure disturbance campaign)")
		broken   = flag.Bool("broken", false, "disable the OMU exclusivity check (detection selftest; failures expected)")
		tmMode   = flag.Bool("tm", false, "run the scenarios on the software transactional-memory backend")
		brokenTM = flag.Bool("broken-tm", false, "skip TM commit validation (detection selftest; failures expected; implies -tm)")
		shrink   = flag.Int64("shrink", -1, "shrink the fault plan of this failing seed and exit")
		out      = flag.String("out", "CHAOS.json", "report path ('-' for stdout)")
		quiet    = flag.Bool("quiet", false, "suppress per-failure progress lines")
	)
	flag.Parse()

	opt := chaos.Options{Faults: !*noFaults, BrokenOMU: *broken,
		TM: *tmMode, BrokenTMValidation: *brokenTM, Budget: sim.Time(*budget)}

	if *shrink >= 0 {
		runShrink(*shrink, opt)
		return
	}

	t0 := time.Now()
	progress := func(o *chaos.Outcome) {
		if o.Failed() && !*quiet {
			fmt.Fprintf(os.Stderr, "seed %d FAILED (%s / %s): %s\n", o.Seed, o.Config, o.Lib, o.Err)
		}
	}
	outs := chaos.Campaign(*start, *seeds, *parallel, opt, progress)

	rep := buildReport(*start, *seeds, opt, outs)
	rep.WallSeconds = time.Since(t0).Seconds()
	expectFailures := *broken || *brokenTM

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal("encode report: %v", err)
	}
	if *out == "-" {
		fmt.Println(string(blob))
	} else if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fatal("write %s: %v", *out, err)
	}

	fmt.Printf("chaos: %d seeds, %d failed, %d faults fired, %.1fs\n",
		*seeds, rep.Failed, rep.FaultsFired, rep.WallSeconds)
	code, msg := exitCode(rep, expectFailures)
	if msg != "" {
		fmt.Fprintln(os.Stderr, "misar-chaos: "+msg)
	}
	os.Exit(code)
}

// buildReport aggregates campaign outcomes into the CHAOS.json report.
func buildReport(start, seeds int64, opt chaos.Options, outs []*chaos.Outcome) *report {
	rep := &report{
		Schema:    "misar-chaos/v1",
		GoVersion: runtime.Version(),
		Start:     start, Seeds: seeds,
		Faults: opt.Faults, BrokenOMU: opt.BrokenOMU,
		TM: opt.TM || opt.BrokenTMValidation, BrokenTM: opt.BrokenTMValidation,
		Budget:      uint64(opt.EffectiveBudget()),
		Outcomes:    outs,
		GeneratedAt: time.Now().UTC(),
	}
	for _, o := range outs {
		if o.Failed() {
			rep.Failed++
		}
		rep.FaultsFired += o.Counts.Total()
	}
	return rep
}

// exitCode is the CI gate: any recorded safety/liveness failure — a run
// error, an invariant violation, an oracle overlap, or a lost update —
// makes the campaign exit nonzero. Under -broken or -broken-tm the status
// flips: the protocol is deliberately broken, so detecting NOTHING is the
// failure.
func exitCode(rep *report, expectFailures bool) (code int, msg string) {
	if expectFailures {
		if rep.Failed == 0 {
			return 1, "broken-protocol campaign detected nothing — the safety net has a hole"
		}
		return 0, ""
	}
	if rep.Failed > 0 {
		return 1, fmt.Sprintf("%d of %d seeds failed", rep.Failed, rep.Seeds)
	}
	return 0, ""
}

func runShrink(seed int64, opt chaos.Options) {
	plan, out, ok := chaos.Shrink(seed, opt)
	if !ok {
		fatal("seed %d does not fail under the full default plan; nothing to shrink", seed)
	}
	fmt.Printf("seed %d minimized to fault sites %v (from %v)\n",
		seed, plan.Sites(), fault.DefaultPlan(uint64(seed)).Sites())
	fmt.Printf("failure: %s\n", out.Err)
	for _, v := range out.Violations {
		fmt.Printf("violation: %s\n", v.String())
	}
	if out.Diag != nil {
		fmt.Printf("%s\n", out.Diag.Summary())
	}
	blob, _ := json.MarshalIndent(struct {
		Seed    int64          `json:"seed"`
		Plan    fault.Plan     `json:"plan"`
		Sites   []string       `json:"sites"`
		Outcome *chaos.Outcome `json:"outcome"`
	}{seed, plan, plan.Sites(), out}, "", "  ")
	fmt.Println(string(blob))
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "misar-chaos: "+format+"\n", args...)
	os.Exit(1)
}
