package main

import (
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	out := `
goos: linux
BenchmarkFigSpeedup-8             1   123456789 ns/op   1.440 geomean-speedup   1024 B/op   12 allocs/op
BenchmarkEngineEvents-8      200000         418 ns/op      0 B/op    0 allocs/op
PASS
`
	rs := parse(out)
	if len(rs) != 2 {
		t.Fatalf("parsed %d results, want 2", len(rs))
	}
	fig := rs[0]
	if fig.Name != "FigSpeedup" || fig.NsPerOp != 123456789 ||
		fig.AllocsPerOp != 12 || fig.Extra["geomean-speedup"] != 1.44 {
		t.Fatalf("bad parse: %+v", fig)
	}
	if eng := rs[1]; eng.NsPerOp != 418 || eng.AllocsPerOp != 0 {
		t.Fatalf("bad parse: %+v", eng)
	}
}

func TestRegressions(t *testing.T) {
	prev := []result{
		{Name: "A", NsPerOp: 1000, AllocsPerOp: 10},
		{Name: "B", NsPerOp: 1000, AllocsPerOp: 0},
		{Name: "Gone", NsPerOp: 500},
	}
	cur := []result{
		{Name: "A", NsPerOp: 1100, AllocsPerOp: 10},  // +10%: within limit
		{Name: "B", NsPerOp: 1200, AllocsPerOp: 0},   // +20%: over limit
		{Name: "New", NsPerOp: 9999, AllocsPerOp: 1}, // new benchmark: passes
	}
	bad := regressions(cur, prev, 15)
	if len(bad) != 2 {
		t.Fatalf("got %d findings, want 2 (B slowdown, Gone dropped): %v", len(bad), bad)
	}
	joined := strings.Join(bad, "\n")
	if !strings.Contains(joined, "B:") || !strings.Contains(joined, "Gone:") {
		t.Fatalf("findings must name B and Gone: %v", bad)
	}
	if strings.Contains(joined, "A:") {
		t.Fatalf("A is within the limit and must pass: %v", bad)
	}
}

func TestRegressionsZeroAllocClaim(t *testing.T) {
	prev := []result{{Name: "Kernel", NsPerOp: 100, AllocsPerOp: 0}}
	cur := []result{{Name: "Kernel", NsPerOp: 100, AllocsPerOp: 2}}
	bad := regressions(cur, prev, 15)
	if len(bad) != 1 || !strings.Contains(bad[0], "zero-alloc") {
		t.Fatalf("new allocations on a zero-alloc benchmark must fail: %v", bad)
	}
	if bad := regressions(prev, prev, 15); len(bad) != 0 {
		t.Fatalf("identical reports must pass: %v", bad)
	}
}
