// Command misar-bench runs the repository's benchmark suite and emits a
// machine-readable BENCH_kernel.json. It shells out to `go test -bench`, so
// the numbers are exactly what a developer sees at the command line, and
// compares every benchmark against the checked-in seed-kernel baseline
// (baseline.txt: commit 6fedd5c, container/heap engine, closure-per-hop NoC,
// unpooled messages) to report speedup and allocation ratios.
//
// A second pass runs the BenchmarkParallel* suite — the sharded conservative
// kernel's serving paths — and writes BENCH_parallel.json, tagged with the
// shard count and GOMAXPROCS so reports from differently provisioned hosts
// are never compared blindly.
//
// Usage:
//
//	misar-bench                         # figures at -benchtime=1x, kernel microbench
//	misar-bench -benchtime 3x -out b.json
//	misar-bench -against BENCH_kernel.json -max-regress 15
//	misar-bench -shards 4 -parallel-out b_par.json
//	misar-bench -against-parallel BENCH_parallel.json
//
// With -against (and -against-parallel for the sharded report), the freshly
// measured numbers are compared to a previously committed report: any
// benchmark whose ns/op or allocs/op regressed by more than -max-regress
// percent fails the run with exit 1. The parallel gate additionally refuses
// to compare reports taken at different shard counts or GOMAXPROCS. CI runs
// both gates against the checked-in reports; see .github/workflows/ci.yml
// and the Makefile `bench` target.
package main

import (
	_ "embed"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

//go:embed baseline.txt
var baselineText string

// result is one parsed benchmark line.
type result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	// Not omitempty: allocs_per_op == 0 is the kernel's headline claim.
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`

	// Baseline comparison, present when baseline.txt has the same benchmark.
	BaselineNsPerOp float64 `json:"baseline_ns_per_op,omitempty"`
	Speedup         float64 `json:"speedup,omitempty"`
	AllocRatio      float64 `json:"alloc_ratio,omitempty"`
}

type report struct {
	Schema    string `json:"schema"`
	GoVersion string `json:"go_version"`
	Benchtime string `json:"benchtime"`
	// Shards and GOMAXPROCS are set only in the parallel report
	// (misar-bench/parallel/v1): sharded wall-clock depends on both, so a
	// gate must never compare reports taken under different values.
	Shards         int       `json:"shards,omitempty"`
	GOMAXPROCS     int       `json:"gomaxprocs,omitempty"`
	BaselineCommit string    `json:"baseline_commit,omitempty"`
	Results        []result  `json:"results"`
	TotalNs        float64   `json:"total_ns"`
	BaselineNs     float64   `json:"baseline_total_ns"`
	TotalSpeedup   float64   `json:"total_speedup"`
	WallSeconds    float64   `json:"wall_seconds"`
	GeneratedAt    time.Time `json:"generated_at"`
}

// benchLine matches one `go test -bench` result row; the trailing metrics
// ("418 ns/op", "1.440 geomean-speedup", "8 B/op") stay as one blob for
// pair-wise tokenizing below.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.+)$`)

func parse(out string) []result {
	var rs []result
	for _, line := range strings.Split(out, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		r := result{Name: strings.TrimPrefix(m[1], "Benchmark"), Iterations: iters}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			default:
				if r.Extra == nil {
					r.Extra = map[string]float64{}
				}
				r.Extra[unit] = v
			}
		}
		rs = append(rs, r)
	}
	return rs
}

// run executes one `go test -bench` invocation and returns its stdout.
// extra is appended after -args (flags for the test binary itself).
func run(pkg, bench, benchtime string, extra ...string) (string, error) {
	args := []string{"test", "-run", "^$", "-bench", bench,
		"-benchtime", benchtime, "-benchmem", pkg}
	if len(extra) > 0 {
		args = append(append(args, "-args"), extra...)
	}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go test -bench %s %s: %w", bench, pkg, err)
	}
	return string(out), nil
}

// regressions compares a fresh report against a committed one and returns
// one line per benchmark that got slower (ns/op) or more allocation-hungry
// (allocs/op) by more than maxRegress percent. Benchmarks missing from the
// committed report are new and pass; benchmarks that vanished are reported —
// a silently dropped benchmark would otherwise hide its regression forever.
func regressions(cur, prev []result, maxRegress float64) []string {
	limit := 1 + maxRegress/100
	curByName := map[string]result{}
	for _, r := range cur {
		curByName[r.Name] = r
	}
	var bad []string
	for _, p := range prev {
		c, ok := curByName[p.Name]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: present in the committed report but no longer measured", p.Name))
			continue
		}
		if p.NsPerOp > 0 && c.NsPerOp > p.NsPerOp*limit {
			bad = append(bad, fmt.Sprintf("%s: %.0f ns/op vs committed %.0f (+%.1f%%, limit %.0f%%)",
				p.Name, c.NsPerOp, p.NsPerOp, 100*(c.NsPerOp/p.NsPerOp-1), maxRegress))
		}
		if p.AllocsPerOp > 0 && c.AllocsPerOp > p.AllocsPerOp*limit {
			bad = append(bad, fmt.Sprintf("%s: %.0f allocs/op vs committed %.0f (+%.1f%%, limit %.0f%%)",
				p.Name, c.AllocsPerOp, p.AllocsPerOp, 100*(c.AllocsPerOp/p.AllocsPerOp-1), maxRegress))
		}
		// Zero-alloc benchmarks are the kernel's headline claim: any alloc
		// at all is a regression no percentage threshold can express.
		if p.AllocsPerOp == 0 && c.AllocsPerOp > 0 {
			bad = append(bad, fmt.Sprintf("%s: %.0f allocs/op vs committed 0 (zero-alloc claim broken)",
				p.Name, c.AllocsPerOp))
		}
	}
	return bad
}

// find returns the named result, or nil.
func find(rs []result, name string) *result {
	for i := range rs {
		if rs[i].Name == name {
			return &rs[i]
		}
	}
	return nil
}

func main() {
	out := flag.String("out", "BENCH_kernel.json", "output JSON path")
	benchtime := flag.String("benchtime", "1x", "benchtime for the figure benchmarks")
	storeDir := flag.String("store", "", "persistent result store for the figure benchmarks (warm runs measure store replay, not simulation)")
	against := flag.String("against", "", "committed report to gate against; >max-regress%% slowdown fails")
	maxRegress := flag.Float64("max-regress", 15, "regression threshold in percent for -against")
	parallelOut := flag.String("parallel-out", "BENCH_parallel.json", "output JSON path for the sharded-kernel report")
	shards := flag.Int("shards", 2, "shard count for the BenchmarkParallel* suite")
	againstParallel := flag.String("against-parallel", "", "committed parallel report to gate against (same thresholds as -against)")
	flag.Parse()

	start := time.Now()
	// The figure suite at the repository root is the headline workload; the
	// event-kernel microbenchmarks in internal/sim are too fast for 1x, so
	// they always run with a fixed iteration count.
	var extra []string
	if *storeDir != "" {
		extra = append(extra, "-store", *storeDir)
	}
	figOut, err := run(".", "BenchmarkFig", *benchtime, extra...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "misar-bench:", err)
		os.Exit(1)
	}
	simOut, err := run("./internal/sim", "BenchmarkEngine", "200000x")
	if err != nil {
		fmt.Fprintln(os.Stderr, "misar-bench:", err)
		os.Exit(1)
	}
	// Observability-overhead microbenchmarks: the flight recorder is always
	// on in every machine, so its per-event cost is part of the kernel's
	// perf contract and is gated like the engine itself. The churn pair
	// needs millions of iterations for a stable 5% comparison — 200000x is
	// dominated by scheduler noise on a loaded machine.
	obsOut, err := run("./internal/obs", "BenchmarkFlightRecord$|BenchmarkEngineChurnBare$|BenchmarkEngineChurnFlight$", "2000000x")
	if err != nil {
		fmt.Fprintln(os.Stderr, "misar-bench:", err)
		os.Exit(1)
	}
	snapOut, err := run("./internal/obs", "BenchmarkFlightSnapshot$", "10000x")
	if err != nil {
		fmt.Fprintln(os.Stderr, "misar-bench:", err)
		os.Exit(1)
	}

	base := map[string]result{}
	for _, b := range parse(baselineText) {
		base[b.Name] = b
	}

	rep := report{
		Schema:         "misar-bench/v1",
		GoVersion:      runtime.Version(),
		Benchtime:      *benchtime,
		BaselineCommit: "6fedd5c (seed kernel: container/heap engine, closure-per-hop NoC, unpooled messages)",
		GeneratedAt:    time.Now().UTC(),
	}
	all := append(parse(figOut), parse(simOut)...)
	all = append(all, parse(obsOut)...)
	all = append(all, parse(snapOut)...)
	for _, r := range all {
		if b, ok := base[r.Name]; ok {
			r.BaselineNsPerOp = b.NsPerOp
			if r.NsPerOp > 0 {
				r.Speedup = b.NsPerOp / r.NsPerOp
			}
			if b.AllocsPerOp > 0 {
				r.AllocRatio = r.AllocsPerOp / b.AllocsPerOp
			}
			rep.TotalNs += r.NsPerOp
			rep.BaselineNs += b.NsPerOp
		}
		rep.Results = append(rep.Results, r)
	}
	if rep.TotalNs > 0 {
		rep.TotalSpeedup = rep.BaselineNs / rep.TotalNs
	}
	rep.WallSeconds = time.Since(start).Seconds()

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "misar-bench:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "misar-bench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d benchmarks, figure total %.2fs vs baseline %.2fs (%.2fx)\n",
		*out, len(rep.Results), rep.TotalNs/1e9, rep.BaselineNs/1e9, rep.TotalSpeedup)

	// The flight recorder's acceptance bar: the churn loop with one record
	// per iteration (denser than any real simulation — measured app runs
	// record one flight event per 3-6 fired engine events) must stay within
	// 5% of the identical loop with a nil recorder. Both variants run
	// back-to-back in one `go test` process so machine noise largely
	// cancels out of the ratio.
	bare, flight := find(rep.Results, "EngineChurnBare"), find(rep.Results, "EngineChurnFlight")
	if bare != nil && flight != nil && bare.NsPerOp > 0 {
		overhead := 100 * (flight.NsPerOp/bare.NsPerOp - 1)
		fmt.Printf("flight-recorder overhead on EngineChurn: %.1f%% (limit 5%%)\n", overhead)
		if overhead > 5 {
			fmt.Fprintf(os.Stderr, "misar-bench: flight recorder costs %.1f%% on EngineChurn (%.1f vs %.1f ns/op), over the 5%% budget\n",
				overhead, flight.NsPerOp, bare.NsPerOp)
			os.Exit(1)
		}
	}

	if *against != "" {
		prevBuf, err := os.ReadFile(*against)
		if err != nil {
			fmt.Fprintln(os.Stderr, "misar-bench:", err)
			os.Exit(1)
		}
		var prev report
		if err := json.Unmarshal(prevBuf, &prev); err != nil {
			fmt.Fprintf(os.Stderr, "misar-bench: %s: %v\n", *against, err)
			os.Exit(1)
		}
		if bad := regressions(rep.Results, prev.Results, *maxRegress); len(bad) > 0 {
			fmt.Fprintf(os.Stderr, "misar-bench: %d regression(s) against %s:\n", len(bad), *against)
			for _, line := range bad {
				fmt.Fprintln(os.Stderr, "  "+line)
			}
			os.Exit(1)
		}
		fmt.Printf("no regressions against %s (limit %.0f%%)\n", *against, *maxRegress)
	}

	// Second pass: the sharded conservative kernel. Its own report file and
	// gate, because the numbers are parameterized by shard count and host
	// parallelism in a way the serial kernel's are not.
	parStart := time.Now()
	parBench, err := run(".", "BenchmarkParallel", *benchtime,
		append(append([]string{}, extra...), "-shards", strconv.Itoa(*shards))...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "misar-bench:", err)
		os.Exit(1)
	}
	parRep := report{
		Schema:      "misar-bench/parallel/v1",
		GoVersion:   runtime.Version(),
		Benchtime:   *benchtime,
		Shards:      *shards,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Results:     parse(parBench),
		GeneratedAt: time.Now().UTC(),
	}
	for _, r := range parRep.Results {
		parRep.TotalNs += r.NsPerOp
	}
	parRep.WallSeconds = time.Since(parStart).Seconds()
	buf, err = json.MarshalIndent(parRep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "misar-bench:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*parallelOut, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "misar-bench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d sharded benchmarks at %d shards, GOMAXPROCS=%d, total %.2fs\n",
		*parallelOut, len(parRep.Results), parRep.Shards, parRep.GOMAXPROCS, parRep.TotalNs/1e9)

	if *againstParallel != "" {
		prevBuf, err := os.ReadFile(*againstParallel)
		if err != nil {
			fmt.Fprintln(os.Stderr, "misar-bench:", err)
			os.Exit(1)
		}
		var prev report
		if err := json.Unmarshal(prevBuf, &prev); err != nil {
			fmt.Fprintf(os.Stderr, "misar-bench: %s: %v\n", *againstParallel, err)
			os.Exit(1)
		}
		if prev.Shards != parRep.Shards || prev.GOMAXPROCS != parRep.GOMAXPROCS {
			fmt.Fprintf(os.Stderr, "misar-bench: %s was taken at shards=%d GOMAXPROCS=%d; this run is shards=%d GOMAXPROCS=%d — sharded wall-clock is not comparable across those\n",
				*againstParallel, prev.Shards, prev.GOMAXPROCS, parRep.Shards, parRep.GOMAXPROCS)
			os.Exit(1)
		}
		if bad := regressions(parRep.Results, prev.Results, *maxRegress); len(bad) > 0 {
			fmt.Fprintf(os.Stderr, "misar-bench: %d regression(s) against %s:\n", len(bad), *againstParallel)
			for _, line := range bad {
				fmt.Fprintln(os.Stderr, "  "+line)
			}
			os.Exit(1)
		}
		fmt.Printf("no regressions against %s (limit %.0f%%)\n", *againstParallel, *maxRegress)
	}
}
