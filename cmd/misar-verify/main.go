// Command misar-verify certifies the MiSAR protocol models in
// internal/verify by exhaustive counter-abstraction model checking and
// emits a machine-readable JSON certificate.
//
// Usage:
//
//	misar-verify                   # certify all models, certificate to stdout
//	misar-verify -o cert.json      # write the certificate to a file
//	misar-verify -model mesi       # certify a single model
//	misar-verify -broken           # self-test: explore the deliberately
//	                               # broken variants as subjects; they must
//	                               # come out Unsafe, so the exit code is 1
//	                               # and each witness trace is printed
//
// Exit status: 0 when every explored pristine model is Safe and every broken
// variant is Unsafe; 1 when any verdict is wrong (witness printed); 2 on
// usage or engine errors. CI runs both the default mode (artifact upload)
// and `-broken` (asserting exit 1) — see .github/workflows/ci.yml.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"misar/internal/verify"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("misar-verify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "", "write the JSON certificate to this path (default stdout)")
	model := fs.String("model", "", "certify only this model (see -list)")
	broken := fs.Bool("broken", false, "explore the broken variants as subjects (self-test; expected exit 1)")
	list := fs.Bool("list", false, "list shipped models and exit")
	quiet := fs.Bool("q", false, "suppress the per-model summary on stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, m := range verify.Models() {
			fmt.Fprintf(stdout, "%-20s %2d vars %2d rules %d broken variants\n",
				m.System.Name, len(m.System.Vars), len(m.System.Rules), len(m.Broken))
		}
		return 0
	}

	if *broken {
		return runBroken(*model, stdout, stderr)
	}

	cert, err := certify(*model)
	if err != nil {
		fmt.Fprintln(stderr, "misar-verify:", err)
		return 2
	}
	if !*quiet {
		fmt.Fprint(stderr, cert.Summary())
	}
	buf, err := cert.MarshalIndent()
	if err != nil {
		fmt.Fprintln(stderr, "misar-verify:", err)
		return 2
	}
	buf = append(buf, '\n')
	if *out == "" {
		stdout.Write(buf)
	} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(stderr, "misar-verify:", err)
		return 2
	}
	if !cert.OK {
		return 1
	}
	return 0
}

// certify runs the full certification, or a single model's slice of it.
func certify(model string) (*verify.Certificate, error) {
	if model == "" {
		return verify.Certify()
	}
	m, ok := verify.ModelByName(model)
	if !ok {
		return nil, fmt.Errorf("unknown model %q (try -list)", model)
	}
	cert := &verify.Certificate{Schema: verify.CertSchema, OK: true}
	res, err := verify.Explore(m.System)
	if err != nil {
		return nil, err
	}
	cert.Models = append(cert.Models, verify.ModelResult{
		Result: *res, Rules: len(m.System.Rules), Invariants: m.Invariants})
	cert.OK = res.Safe
	for _, b := range m.Broken {
		bres, err := verify.Explore(b)
		if err != nil {
			return nil, err
		}
		cert.Models = append(cert.Models, verify.ModelResult{
			Result: *bres, Rules: len(b.Rules), Broken: true})
		if bres.Safe {
			cert.OK = false
		}
	}
	return cert, nil
}

// runBroken explores only the broken variants, printing each witness. A
// healthy checker finds every one Unsafe, so the expected exit code is 1;
// exit 0 here means detection power was lost.
func runBroken(model string, stdout, stderr io.Writer) int {
	unsafe := 0
	total := 0
	for _, m := range verify.Models() {
		if model != "" && m.System.Name != model {
			continue
		}
		for _, b := range m.Broken {
			total++
			res, err := verify.Explore(b)
			if err != nil {
				fmt.Fprintln(stderr, "misar-verify:", err)
				return 2
			}
			if res.Safe {
				fmt.Fprintf(stdout, "SAFE   %s — broken variant NOT detected\n", b.Name)
				continue
			}
			unsafe++
			fmt.Fprintf(stdout, "UNSAFE %s via %q\n", b.Name, res.Unsafe)
			fmt.Fprint(stdout, verify.WitnessString(res))
		}
	}
	if total == 0 {
		fmt.Fprintf(stderr, "misar-verify: no broken variants matched %q\n", model)
		return 2
	}
	if unsafe == total {
		fmt.Fprintf(stdout, "all %d broken variants detected\n", total)
		return 1
	}
	fmt.Fprintf(stdout, "DETECTION FAILURE: only %d of %d broken variants flagged\n", unsafe, total)
	return 0
}
