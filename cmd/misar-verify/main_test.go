package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"misar/internal/verify"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestDefaultCertifiesOK(t *testing.T) {
	code, stdout, stderr := runCLI(t)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	var cert verify.Certificate
	if err := json.Unmarshal([]byte(stdout), &cert); err != nil {
		t.Fatalf("stdout is not a certificate: %v", err)
	}
	if cert.Schema != verify.CertSchema || !cert.OK {
		t.Fatalf("schema=%q ok=%v", cert.Schema, cert.OK)
	}
	if !strings.Contains(stderr, "mesi") {
		t.Fatalf("summary missing from stderr:\n%s", stderr)
	}
}

func TestOutFlagWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cert.json")
	code, stdout, stderr := runCLI(t, "-q", "-o", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if stdout != "" {
		t.Fatalf("stdout should be empty with -o, got %q", stdout)
	}
	if stderr != "" {
		t.Fatalf("stderr should be empty with -q, got %q", stderr)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var cert verify.Certificate
	if err := json.Unmarshal(data, &cert); err != nil || !cert.OK {
		t.Fatalf("bad certificate file: %v, ok=%v", err, cert.OK)
	}
}

func TestSingleModel(t *testing.T) {
	code, stdout, _ := runCLI(t, "-q", "-model", "mesi")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	var cert verify.Certificate
	if err := json.Unmarshal([]byte(stdout), &cert); err != nil {
		t.Fatal(err)
	}
	m, _ := verify.ModelByName("mesi")
	if want := 1 + len(m.Broken); len(cert.Models) != want {
		t.Fatalf("got %d entries, want %d", len(cert.Models), want)
	}
}

func TestUnknownModel(t *testing.T) {
	code, _, stderr := runCLI(t, "-model", "no-such-model")
	if code != 2 || !strings.Contains(stderr, "unknown model") {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
}

// TestBrokenSelfTest pins the CI contract: -broken must exit 1 (all broken
// variants detected Unsafe) and print a replayable witness per variant.
func TestBrokenSelfTest(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-broken")
	if code != 1 {
		t.Fatalf("exit %d (want 1 = detection works), stderr:\n%s", code, stderr)
	}
	if strings.Contains(stdout, "DETECTION FAILURE") {
		t.Fatalf("detection failure:\n%s", stdout)
	}
	for _, m := range verify.Models() {
		for _, b := range m.Broken {
			if !strings.Contains(stdout, "UNSAFE "+b.Name) {
				t.Errorf("no UNSAFE verdict printed for %s", b.Name)
			}
		}
	}
	if !strings.Contains(stdout, "witness for") {
		t.Fatalf("no witness trace printed:\n%s", stdout)
	}
}

func TestBrokenUnknownModel(t *testing.T) {
	code, _, stderr := runCLI(t, "-broken", "-model", "nope")
	if code != 2 || !strings.Contains(stderr, "no broken variants") {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
}

func TestListModels(t *testing.T) {
	code, stdout, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, m := range verify.Models() {
		if !strings.Contains(stdout, m.System.Name) {
			t.Errorf("model %s missing from -list", m.System.Name)
		}
	}
}
