// Command misar-fig regenerates the tables and figures of the MiSAR paper
// (ISCA 2015, §6) plus the repository's ablations, printing each as an
// aligned text table.
//
// Usage:
//
//	misar-fig -fig 6                 # Figure 6 at the paper's 16/64 cores
//	misar-fig -fig 5 -tiles 8,16     # Figure 5 at reduced scale
//	misar-fig -fig all -quick        # everything, small scale
//	misar-fig -fig headline          # the abstract's three claims
//	misar-fig -fig all -parallel 8   # 8 simulations in flight
//	misar-fig -fig 6 -store cache/   # persist results; reruns are instant
//	misar-fig -fig 6 -shards 4       # sharded conservative kernel
//	misar-fig -fig scale -tiles 256,1024  # wall-clock scaling sweep
//
// Figures: table1, 5, 6, 7, 8, 9, headline, omu-sweep, entry-sweep,
// fairness, suspend, sync-overhead, scale, all.
//
// -shards N runs every compatible simulation on the sharded conservative
// kernel (incompatible configurations fall back to the serial kernel).
// Results are deterministic per shard count but, under same-cycle
// contention, not cycle-identical to the serial kernel — see DESIGN.md §14.
//
// -report dir/ meters every simulation and writes one JSON metrics report
// per unique run into dir/ (deterministic filenames; see internal/metrics).
//
// Simulations run through one shared harness.Runner: -parallel N keeps up
// to N in flight, and each unique (app, config, tiles, library)
// combination is simulated exactly once per invocation even when several
// figures need it (the pthread baseline is shared by Fig6, Fig8, Fig9 and
// Headline). Output is byte-identical for every -parallel value.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"misar/internal/harness"
	"misar/internal/prof"
	"misar/internal/stats"
	"misar/internal/store"
)

func main() {
	fig := flag.String("fig", "headline", "artifact to regenerate (table1, 5-9, headline, omu-sweep, entry-sweep, fairness, suspend, scale, all)")
	tiles := flag.String("tiles", "16,64", "comma-separated core counts")
	shards := flag.Int("shards", 0, "run compatible simulations on the sharded kernel with N shards (0 = serial)")
	apps := flag.String("apps", "", "comma-separated app subset (default: full suite)")
	quick := flag.Bool("quick", false, "use the reduced test-scale options")
	parallel := flag.Int("parallel", runtime.NumCPU(), "max simulations in flight (1 = serial)")
	progress := flag.Bool("progress", false, "print one line per completed simulation to stderr")
	report := flag.String("report", "", "directory for per-run JSON metrics reports (enables metering)")
	storeDir := flag.String("store", "", "persistent result store directory; warm results skip simulation entirely")
	flag.Parse()
	defer prof.Start()()

	o := harness.DefaultOptions()
	if *quick {
		o = harness.QuickOptions()
	} else {
		o.Tiles = nil
		for _, t := range strings.Split(*tiles, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(t))
			if err != nil || n < 1 || n > 1024 {
				fmt.Fprintf(os.Stderr, "misar-fig: bad tile count %q\n", t)
				os.Exit(2)
			}
			o.Tiles = append(o.Tiles, n)
		}
		if *apps != "" {
			o.Apps = strings.Split(*apps, ",")
		}
	}

	r := harness.NewRunner(*parallel)
	if *shards > 0 {
		r.SetConfigTransform(harness.ShardTransform(*shards))
	}
	if *report != "" {
		r.EnableMetrics()
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "misar-fig:", err)
			os.Exit(1)
		}
		r.SetStore(st)
	}
	if *progress {
		r.SetProgress(func(ev harness.ProgressEvent) {
			status := ""
			if ev.Err != nil {
				status = "  FAILED: " + ev.Err.Error()
			}
			fmt.Fprintf(os.Stderr, "[%3d/%3d] %-45s %10v%s\n",
				ev.Done, ev.Unique, ev.Label, ev.Elapsed.Round(time.Millisecond), status)
		})
	}

	runners := map[string]func(*harness.Runner, harness.Options) (*stats.Table, error){
		"table1": func(*harness.Runner, harness.Options) (*stats.Table, error) {
			return harness.Table1(), nil
		},
		"5":           (*harness.Runner).Fig5,
		"6":           (*harness.Runner).Fig6,
		"7":           (*harness.Runner).Fig7,
		"8":           (*harness.Runner).Fig8,
		"9":           (*harness.Runner).Fig9,
		"headline":    (*harness.Runner).Headline,
		"omu-sweep":   (*harness.Runner).OMUSweep,
		"bloom-sweep": (*harness.Runner).BloomSweep,
		"entry-sweep": (*harness.Runner).EntrySweep,
		"fairness": func(_ *harness.Runner, o harness.Options) (*stats.Table, error) {
			return harness.Fairness(o)
		},
		"suspend": func(_ *harness.Runner, o harness.Options) (*stats.Table, error) {
			return harness.SuspendStress(o)
		},
		"sync-overhead": (*harness.Runner).SyncOverhead,
		"scale": func(_ *harness.Runner, o harness.Options) (*stats.Table, error) {
			return harness.ScaleSweep(o)
		},
		"tm": (*harness.Runner).TMSweep,
	}
	order := []string{"table1", "5", "6", "7", "8", "9", "headline",
		"omu-sweep", "bloom-sweep", "entry-sweep", "fairness", "suspend",
		"sync-overhead", "scale", "tm"}

	var selected []string
	if *fig == "all" {
		selected = order
	} else {
		if _, ok := runners[*fig]; !ok {
			fmt.Fprintf(os.Stderr, "misar-fig: unknown figure %q (want one of %s, all)\n",
				*fig, strings.Join(order, ", "))
			os.Exit(2)
		}
		selected = []string{*fig}
	}

	total := time.Now()
	for _, name := range selected {
		start := time.Now()
		t, err := runners[name](r, o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "misar-fig: %s: %v\n", name, err)
			os.Exit(1)
		}
		t.Render(os.Stdout)
		fmt.Printf("(%s regenerated in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	if *report != "" {
		reps := r.Reports()
		for _, rep := range reps {
			if err := rep.WriteJSONFile(filepath.Join(*report, rep.Filename())); err != nil {
				fmt.Fprintf(os.Stderr, "misar-fig: %v\n", err)
				os.Exit(1)
			}
		}
		fmt.Printf("(%d metrics reports written to %s)\n", len(reps), *report)
	}
	st := r.Stats()
	if st.Submitted > 0 {
		fmt.Printf("(%d submissions -> %d unique, %d simulated, %d from store, %d memoized; %d workers, total %v)\n",
			st.Submitted, st.Unique, st.Executed, st.StoreHits, st.Submitted-st.Unique,
			r.Workers(), time.Since(total).Round(time.Millisecond))
	}
}
