// Command misar-trace runs a benchmark with protocol tracing attached and
// prints the chronological MSA event timeline: requests, grants, aborts,
// entry lifecycle, silent acquisitions, and the condition-variable
// MSA-to-MSA handshakes.
//
// Usage:
//
//	misar-trace -app fluidanimate -tiles 8 -last 40
//	misar-trace -app streamcluster -tiles 16 -addr 0x1000040
//	misar-trace -app fluidanimate -tiles 8 -format chrome > trace.json
//	misar-trace -from-flight flight.json -format chrome > trace.json
//
// -format chrome emits the timeline as Chrome trace-event JSON on stdout,
// loadable in ui.perfetto.dev or chrome://tracing.
//
// -from-flight renders a flight-recorder dump instead of running a
// simulation: the JSON served by misar-served's GET /v1/jobs/{id}/flight
// (or embedded in a liveness/safety/panic error), so the tail of events
// leading up to a failure opens in the same text or Perfetto views as a
// live trace. "-" reads the dump from stdin.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"misar/internal/machine"
	"misar/internal/memory"
	"misar/internal/obs"
	"misar/internal/syncrt"
	"misar/internal/trace"
	"misar/internal/workload"
)

func main() {
	appName := flag.String("app", "fluidanimate", "benchmark name")
	tiles := flag.Int("tiles", 8, "core count")
	entries := flag.Int("entries", 2, "MSA entries per slice")
	capacity := flag.Int("buffer", 100_000, "event buffer capacity")
	last := flag.Int("last", 100, "print only the last N events (0 = all)")
	addr := flag.String("addr", "", "filter to one sync address (hex)")
	format := flag.String("format", "text", "output format: text or chrome (trace-event JSON for Perfetto)")
	fromFlight := flag.String("from-flight", "", "render a flight-recorder dump (JSON file, or - for stdin) instead of simulating")
	flag.Parse()

	if *format != "text" && *format != "chrome" {
		fmt.Fprintf(os.Stderr, "misar-trace: unknown -format %q (want text or chrome)\n", *format)
		os.Exit(2)
	}

	if *fromFlight != "" {
		if err := renderFlight(*fromFlight, *format, *last); err != nil {
			fmt.Fprintln(os.Stderr, "misar-trace:", err)
			os.Exit(2) // bad input, same convention as -app/-addr
		}
		return
	}

	app, ok := workload.ByName(*appName)
	if !ok {
		fmt.Fprintf(os.Stderr, "misar-trace: unknown app %q\n", *appName)
		os.Exit(2)
	}

	buf := trace.NewBuffer(*capacity)
	if *addr != "" {
		v, err := strconv.ParseUint(strings.TrimPrefix(*addr, "0x"), 16, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "misar-trace: bad -addr %q\n", *addr)
			os.Exit(2)
		}
		buf.SetFilter(memory.Addr(v))
	}

	cfg := machine.MSAOMU(*tiles, *entries)
	m := machine.New(cfg)
	m.AttachTracer(buf)
	arena := syncrt.NewArena(0x1000000)
	body := app.Build(arena, cfg.Tiles, syncrt.HWLib())
	m.SpawnAll(cfg.Tiles, body)
	cycles, err := m.Run(workload.RunDeadline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "misar-trace:", err)
		os.Exit(1)
	}

	events := buf.Events()
	if *format == "chrome" {
		if err := trace.WriteChrome(os.Stdout, events); err != nil {
			fmt.Fprintln(os.Stderr, "misar-trace:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("# %s on %s: %d cycles, %d events recorded (%d dropped, %d filtered)\n",
		app.Name, cfg.Name, cycles, len(events), buf.Dropped, buf.Filtered)
	printText(events, *last)
}

// renderFlight decodes a flight-recorder dump and renders it through the
// same text/chrome paths as a live protocol trace.
func renderFlight(path, format string, last int) error {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	var dump obs.FlightDump
	if err := json.NewDecoder(r).Decode(&dump); err != nil {
		return fmt.Errorf("decode flight dump: %w", err)
	}
	if dump.Schema != "" && dump.Schema != obs.FlightDumpSchema {
		return fmt.Errorf("unknown flight dump schema %q (want %q)", dump.Schema, obs.FlightDumpSchema)
	}
	events := obs.TraceEvents(dump.Events)
	if format == "chrome" {
		return trace.WriteChrome(os.Stdout, events)
	}
	label := dump.Label
	if label == "" {
		label = "(unlabelled)"
	}
	fmt.Printf("# flight dump %s: job %s, trace %s, %d of %d total events retained\n",
		label, orDash(dump.Job), orDash(dump.Trace), len(dump.Events), dump.Total)
	printText(events, last)
	return nil
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func printText(events []trace.Event, last int) {
	fmt.Printf("# %10s  %-7s %-8s %-8s %-11s detail\n", "cycle", "tile", "kind", "core", "addr")
	if last > 0 && len(events) > last {
		fmt.Printf("# ... %d earlier events elided (use -last 0 for all)\n", len(events)-last)
		events = events[len(events)-last:]
	}
	for _, ev := range events {
		fmt.Println(ev)
	}
}
