module misar

go 1.22
