package misar_test

// One testing.B benchmark per table and figure of the paper (§6), plus the
// DESIGN.md ablations. Each benchmark iteration regenerates the artifact at
// a reduced scale (8/16 tiles, representative app subset) so `go test
// -bench=.` finishes in minutes; `cmd/misar-fig -tiles 16,64 -full` runs the
// paper-scale versions. The reported ns/op is wall time to regenerate the
// artifact; custom metrics expose the headline numbers.

import (
	"os"
	"strconv"
	"testing"

	"misar"
)

// benchOptions picks the benchmark scale; MISAR_BENCH_TILES overrides.
func benchOptions() misar.Options {
	o := misar.Options{
		Tiles: []int{8, 16},
		Apps: []string{
			"radiosity", "raytrace", "ocean", "ocean-nc",
			"fluidanimate", "streamcluster", "bodytrack",
		},
	}
	if v := os.Getenv("MISAR_BENCH_TILES"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			o.Tiles = []int{n}
		}
	}
	return o
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if misar.Table1().Rows() != 13 {
			b.Fatal("table 1 malformed")
		}
	}
}

func BenchmarkFig5RawLatency(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		t := misar.Fig5(o)
		if t.Rows() == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFig6Speedup(b *testing.B) {
	o := benchOptions()
	var geo float64
	for i := 0; i < b.N; i++ {
		t := misar.Fig6(o)
		cells, ok := t.Lookup("GeoMean/" + strconv.Itoa(o.Tiles[len(o.Tiles)-1]) + "c")
		if !ok {
			b.Fatal("geomean row missing")
		}
		geo, _ = strconv.ParseFloat(cells[3], 64) // MSA/OMU-2 column
	}
	b.ReportMetric(geo, "geomean-speedup")
}

func BenchmarkFig7Coverage(b *testing.B) {
	o := benchOptions()
	var with float64
	for i := 0; i < b.N; i++ {
		t := misar.Fig7(o)
		with, _ = strconv.ParseFloat(t.Cell(t.Rows()-1, 1), 64)
	}
	b.ReportMetric(with, "coverage-pct")
}

func BenchmarkFig8HWSync(b *testing.B) {
	o := benchOptions()
	var with float64
	for i := 0; i < b.N; i++ {
		t := misar.Fig8(o)
		with, _ = strconv.ParseFloat(t.Cell(t.Rows()-1, 0), 64)
	}
	b.ReportMetric(with, "fluidanimate-speedup")
}

func BenchmarkFig9Breakdown(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if misar.Fig9(o).Rows() == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkHeadline(b *testing.B) {
	o := benchOptions()
	var speedup float64
	for i := 0; i < b.N; i++ {
		t := misar.Headline(o)
		speedup, _ = strconv.ParseFloat(t.Cell(0, 0), 64)
	}
	b.ReportMetric(speedup, "geomean-speedup")
}

func BenchmarkAblationOMUSweep(b *testing.B) {
	o := misar.Options{Tiles: []int{8}}
	for i := 0; i < b.N; i++ {
		misar.OMUSweep(o)
	}
}

func BenchmarkAblationBloomSweep(b *testing.B) {
	o := misar.Options{Tiles: []int{8}}
	for i := 0; i < b.N; i++ {
		misar.BloomSweep(o)
	}
}

func BenchmarkAblationEntrySweep(b *testing.B) {
	o := misar.Options{Tiles: []int{8}}
	for i := 0; i < b.N; i++ {
		misar.EntrySweep(o)
	}
}

func BenchmarkAblationFairness(b *testing.B) {
	o := misar.Options{Tiles: []int{8}}
	for i := 0; i < b.N; i++ {
		misar.Fairness(o)
	}
}

func BenchmarkAblationSuspendStress(b *testing.B) {
	o := misar.Options{Tiles: []int{8}}
	for i := 0; i < b.N; i++ {
		misar.SuspendStress(o)
	}
}
