package misar_test

// One testing.B benchmark per table and figure of the paper (§6), plus the
// DESIGN.md ablations. Each benchmark iteration regenerates the artifact at
// a reduced scale (8/16 tiles, representative app subset) so `go test
// -bench=.` finishes in minutes; `cmd/misar-fig -tiles 16,64 -full` runs the
// paper-scale versions. The reported ns/op is wall time to regenerate the
// artifact; custom metrics expose the headline numbers.
//
// Figure benchmarks run through a harness.Runner; pass
// `go test -bench=. -args -parallel 8` to regenerate with 8 simulations in
// flight (default 1, i.e. the serial baseline — so ns/op comparisons
// against older revisions stay meaningful). A fresh Runner is built per
// iteration so memoization never carries across b.N iterations. With -v,
// each completed simulation is logged with its wall-clock.

import (
	"flag"
	"os"
	"strconv"
	"testing"

	"misar"
)

var (
	benchParallel = flag.Int("parallel", 1, "Runner worker-pool size for figure benchmarks")
	benchShards   = flag.Int("shards", 2, "shard count for the BenchmarkParallel* sharded-kernel suite")
	// -store warms benchmarks from a persistent result store. Note the
	// semantics: with a store attached, only the first iteration of each
	// figure simulates; later iterations (and later runs over the same
	// directory) measure store replay, not simulation.
	benchStore = flag.String("store", "", "persistent result store directory for figure benchmarks")
)

// benchOptions picks the benchmark scale; MISAR_BENCH_TILES overrides.
func benchOptions() misar.Options {
	o := misar.Options{
		Tiles: []int{8, 16},
		Apps: []string{
			"radiosity", "raytrace", "ocean", "ocean-nc",
			"fluidanimate", "streamcluster", "bodytrack",
		},
	}
	if v := os.Getenv("MISAR_BENCH_TILES"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			o.Tiles = []int{n}
		}
	}
	return o
}

// benchRunner builds a fresh worker pool for one iteration, logging
// per-simulation wall-clock when the test runs verbose.
func benchRunner(b *testing.B) *misar.Runner {
	r := misar.NewRunner(*benchParallel)
	if *benchStore != "" {
		st, err := misar.OpenStore(*benchStore)
		if err != nil {
			b.Fatal(err)
		}
		r.SetStore(st)
	}
	if testing.Verbose() {
		r.SetProgress(func(ev misar.ProgressEvent) {
			b.Logf("[%3d/%3d] %s in %v", ev.Done, ev.Unique, ev.Label, ev.Elapsed)
		})
	}
	return r
}

func must(b *testing.B, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if misar.Table1().Rows() != 13 {
			b.Fatal("table 1 malformed")
		}
	}
}

func BenchmarkFig5RawLatency(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		t, err := benchRunner(b).Fig5(o)
		must(b, err)
		if t.Rows() == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFig6Speedup(b *testing.B) {
	o := benchOptions()
	var geo float64
	for i := 0; i < b.N; i++ {
		t, err := benchRunner(b).Fig6(o)
		must(b, err)
		cells, ok := t.Lookup("GeoMean/" + strconv.Itoa(o.Tiles[len(o.Tiles)-1]) + "c")
		if !ok {
			b.Fatal("geomean row missing")
		}
		geo, _ = strconv.ParseFloat(cells[3], 64) // MSA/OMU-2 column
	}
	b.ReportMetric(geo, "geomean-speedup")
}

func BenchmarkFig7Coverage(b *testing.B) {
	o := benchOptions()
	var with float64
	for i := 0; i < b.N; i++ {
		t, err := benchRunner(b).Fig7(o)
		must(b, err)
		with, _ = strconv.ParseFloat(t.Cell(t.Rows()-1, 1), 64)
	}
	b.ReportMetric(with, "coverage-pct")
}

func BenchmarkFig8HWSync(b *testing.B) {
	o := benchOptions()
	var with float64
	for i := 0; i < b.N; i++ {
		t, err := benchRunner(b).Fig8(o)
		must(b, err)
		with, _ = strconv.ParseFloat(t.Cell(t.Rows()-1, 0), 64)
	}
	b.ReportMetric(with, "fluidanimate-speedup")
}

func BenchmarkFig9Breakdown(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		t, err := benchRunner(b).Fig9(o)
		must(b, err)
		if t.Rows() == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkHeadline(b *testing.B) {
	o := benchOptions()
	var speedup float64
	for i := 0; i < b.N; i++ {
		t, err := benchRunner(b).Headline(o)
		must(b, err)
		speedup, _ = strconv.ParseFloat(t.Cell(0, 0), 64)
	}
	b.ReportMetric(speedup, "geomean-speedup")
}

// BenchmarkFigSweepShared regenerates Fig6-Fig9 plus Headline through one
// shared Runner per iteration — the whole-evaluation regeneration path of
// cmd/misar-fig, where the memoization cache collapses the repeated
// pthread baselines. The memo-hit count is reported as a metric.
func BenchmarkFigSweepShared(b *testing.B) {
	o := benchOptions()
	var hits float64
	for i := 0; i < b.N; i++ {
		r := benchRunner(b)
		for _, fig := range []func(misar.Options) (*misar.Table, error){
			r.Fig6, r.Fig7, r.Fig8, r.Fig9, r.Headline,
		} {
			_, err := fig(o)
			must(b, err)
		}
		st := r.Stats()
		hits = float64(st.Submitted - st.Unique)
	}
	b.ReportMetric(hits, "memo-hits")
}

// --- Sharded conservative kernel (BENCH_parallel.json) ---
//
// The BenchmarkParallel* suite measures the sharded kernel's serving paths:
// cmd/misar-bench runs it in a separate pass and writes the results, tagged
// with the shard count and GOMAXPROCS, to BENCH_parallel.json. Tiles are
// pinned to 16 (the smallest mesh every ScaleShards count divides) so the
// sharded path — not a serial fallback — is what gets measured.

// BenchmarkParallelFig6Sharded is the figure-regeneration path on the
// sharded kernel: Fig. 6 with every compatible simulation split into
// -shards row bands. Comparing its ns/op against BenchmarkFig6Speedup
// measures the windowed kernel's overhead at paper scale.
func BenchmarkParallelFig6Sharded(b *testing.B) {
	o := benchOptions()
	o.Tiles = []int{16}
	for i := 0; i < b.N; i++ {
		r := benchRunner(b)
		r.SetConfigTransform(misar.ShardTransform(*benchShards))
		t, err := r.Fig6(o)
		must(b, err)
		if t.Rows() == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkParallelScaleSweep is the headline scaling workload: the
// 3-phase tree-barrier program at 64 tiles across every shard count the
// mesh admits (1, 2, 4, 8), exactly what `misar-fig -fig scale` runs at
// 256/1024 tiles.
func BenchmarkParallelScaleSweep(b *testing.B) {
	o := misar.Options{Tiles: []int{64}}
	for i := 0; i < b.N; i++ {
		t, err := misar.ScaleSweep(o)
		must(b, err)
		if t.Rows() == 0 {
			b.Fatal("empty sweep")
		}
	}
}

func BenchmarkAblationOMUSweep(b *testing.B) {
	o := misar.Options{Tiles: []int{8}, Parallel: *benchParallel}
	for i := 0; i < b.N; i++ {
		_, err := misar.OMUSweep(o)
		must(b, err)
	}
}

func BenchmarkAblationBloomSweep(b *testing.B) {
	o := misar.Options{Tiles: []int{8}, Parallel: *benchParallel}
	for i := 0; i < b.N; i++ {
		_, err := misar.BloomSweep(o)
		must(b, err)
	}
}

func BenchmarkAblationEntrySweep(b *testing.B) {
	o := misar.Options{Tiles: []int{8}, Parallel: *benchParallel}
	for i := 0; i < b.N; i++ {
		_, err := misar.EntrySweep(o)
		must(b, err)
	}
}

func BenchmarkAblationFairness(b *testing.B) {
	o := misar.Options{Tiles: []int{8}}
	for i := 0; i < b.N; i++ {
		_, err := misar.Fairness(o)
		must(b, err)
	}
}

func BenchmarkAblationSuspendStress(b *testing.B) {
	o := misar.Options{Tiles: []int{8}}
	for i := 0; i < b.N; i++ {
		_, err := misar.SuspendStress(o)
		must(b, err)
	}
}
